"""Vectorized GA operators (:mod:`repro.ga.vector`).

The per-operator contract is **bit-identity**: each batched operator must
consume a shared ``numpy.random.Generator`` through exactly the same draws
as its scalar twin run in a loop, so swapping one in can never move a
pinned trajectory.  Those pins are property-based and derandomized
(``derandomize=True``), so CI failures reproduce locally from the printed
example.

The whole-step :func:`repro.ga.vector.next_generation_matrix` is
deliberately *not* bit-identical to the scalar loop (phase-ordered draws;
statistical contract, gated in ``tests/test_engine_statistical.py``) — here
it is held to its structural semantics: validation, elitism rule, rng
consumption at the boundaries.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.parameters import GAConfig
from repro.ga.evolution import GeneticAlgorithm
from repro.ga.operators import mutate, one_point_crossover
from repro.ga.selection import select_index
from repro.ga.vector import (
    initial_population_matrix,
    mutate_matrix,
    next_generation_matrix,
    next_generation_tensor,
    one_point_crossover_matrix,
    roulette_select_indices,
    select_indices,
    tournament_select_indices,
)

SETTINGS = settings(max_examples=12, deadline=None, derandomize=True)

seeds = st.integers(0, 2**31 - 1)


def rng_pair(seed: int) -> tuple[np.random.Generator, np.random.Generator]:
    """Two generators on identical streams — one per implementation."""
    return np.random.default_rng(seed), np.random.default_rng(seed)


class TestOperatorBitIdentity:
    """Every batched operator replays the scalar loop's exact draws."""

    @SETTINGS
    @given(seed=seeds, p=st.integers(1, 9), length=st.integers(1, 16))
    def test_initial_population(self, seed, p, length):
        vec_rng, ref_rng = rng_pair(seed)
        matrix = initial_population_matrix(p, length, vec_rng)
        rows = [ref_rng.integers(0, 2, size=length) for _ in range(p)]
        assert matrix.shape == (p, length)
        assert matrix.dtype == np.int8
        np.testing.assert_array_equal(matrix, np.asarray(rows))

    @SETTINGS
    @given(
        seed=seeds,
        p=st.integers(1, 9),
        length=st.integers(1, 16),
        rate=st.sampled_from([0.0, 0.05, 0.5, 1.0]),
    )
    def test_mutate(self, seed, p, length, rate):
        genomes = np.random.default_rng(seed + 1).integers(
            0, 2, size=(p, length), dtype=np.int8
        )
        vec_rng, ref_rng = rng_pair(seed)
        out = mutate_matrix(genomes, rate, vec_rng)
        expected = [mutate(tuple(row), rate, ref_rng) for row in genomes.tolist()]
        np.testing.assert_array_equal(out, np.asarray(expected))
        # both implementations left the shared stream at the same point
        assert vec_rng.integers(1 << 30) == ref_rng.integers(1 << 30)

    @SETTINGS
    @given(seed=seeds, n=st.integers(1, 9), length=st.integers(2, 16))
    def test_one_point_crossover(self, seed, n, length):
        pool = np.random.default_rng(seed + 1)
        a = pool.integers(0, 2, size=(n, length), dtype=np.int8)
        b = pool.integers(0, 2, size=(n, length), dtype=np.int8)
        vec_rng, ref_rng = rng_pair(seed)
        ca, cb = one_point_crossover_matrix(a, b, vec_rng)
        expected = [
            one_point_crossover(tuple(ra), tuple(rb), ref_rng)
            for ra, rb in zip(a.tolist(), b.tolist())
        ]
        np.testing.assert_array_equal(ca, np.asarray([e[0] for e in expected]))
        np.testing.assert_array_equal(cb, np.asarray([e[1] for e in expected]))
        assert vec_rng.integers(1 << 30) == ref_rng.integers(1 << 30)

    @SETTINGS
    @given(
        seed=seeds,
        p=st.integers(1, 9),
        n=st.integers(1, 12),
        size=st.integers(1, 4),
    )
    def test_tournament_selection(self, seed, p, n, size):
        # duplicate fitness values exercise the first-drawn-wins tie rule
        fitness = np.random.default_rng(seed + 1).integers(0, 4, size=p)
        vec_rng, ref_rng = rng_pair(seed)
        idx = tournament_select_indices(fitness, vec_rng, n, size)
        expected = [
            select_index("tournament", fitness, ref_rng, size) for _ in range(n)
        ]
        assert idx.tolist() == expected
        assert vec_rng.integers(1 << 30) == ref_rng.integers(1 << 30)

    @SETTINGS
    @given(
        seed=seeds,
        p=st.integers(1, 9),
        n=st.integers(1, 12),
        degenerate=st.booleans(),
    )
    def test_roulette_selection(self, seed, p, n, degenerate):
        fitness = (
            np.zeros(p)
            if degenerate  # zero total: uniform-pick fallback, also batched
            else np.random.default_rng(seed + 1).random(p)
        )
        vec_rng, ref_rng = rng_pair(seed)
        idx = roulette_select_indices(fitness, vec_rng, n)
        expected = [select_index("roulette", fitness, ref_rng) for _ in range(n)]
        assert idx.tolist() == expected
        assert vec_rng.integers(1 << 30) == ref_rng.integers(1 << 30)


class TestValidation:
    def test_unknown_selection_method(self):
        with pytest.raises(ValueError, match="unknown selection method"):
            select_indices("rank", np.ones(4), np.random.default_rng(0), 2)

    def test_empty_fitness_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            tournament_select_indices(np.array([]), np.random.default_rng(0), 1)
        with pytest.raises(ValueError, match="non-empty"):
            roulette_select_indices(np.array([]), np.random.default_rng(0), 1)

    def test_negative_fitness_rejected_by_roulette(self):
        with pytest.raises(ValueError, match="non-negative"):
            roulette_select_indices(np.array([1.0, -1.0]), np.random.default_rng(0), 1)

    def test_mutation_rate_bounds(self):
        with pytest.raises(ValueError, match="mutation rate"):
            mutate_matrix(np.zeros((2, 4), dtype=np.int8), 1.5, np.random.default_rng(0))

    def test_crossover_shape_mismatch(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="shape mismatch"):
            one_point_crossover_matrix(
                np.zeros((2, 4), dtype=np.int8), np.zeros((3, 4), dtype=np.int8), rng
            )
        with pytest.raises(ValueError, match="L >= 2"):
            one_point_crossover_matrix(
                np.zeros((2, 1), dtype=np.int8), np.zeros((2, 1), dtype=np.int8), rng
            )

    def test_population_size_mismatch(self):
        cfg = GAConfig(population_size=4)
        with pytest.raises(ValueError, match="population size"):
            next_generation_matrix(
                np.zeros((3, 13), dtype=np.int8),
                np.ones(3),
                cfg,
                np.random.default_rng(0),
            )

    def test_duck_typed_oversized_elitism_rejected(self):
        # GAConfig validates its own bounds; a duck-typed config (ablation
        # harnesses build these) must hit the step's explicit guard instead
        # of silently growing the population
        cfg = SimpleNamespace(
            population_size=4,
            elitism=5,
            selection="tournament",
            tournament_size=2,
            crossover_rate=0.9,
            mutation_rate=0.1,
        )
        with pytest.raises(ValueError, match="oversized elite set"):
            next_generation_matrix(
                np.zeros((4, 13), dtype=np.int8),
                np.ones(4),
                cfg,
                np.random.default_rng(0),
            )


class TestGenerationStep:
    def test_elitism_equal_to_population_consumes_no_rng(self):
        # boundary: the whole next generation is the sorted elite set; the
        # scalar loop never enters its offspring loop, so the matrix step
        # must leave the generator untouched too
        cfg = GAConfig(population_size=4, elitism=4)
        pop = np.random.default_rng(3).integers(0, 2, size=(4, 13), dtype=np.int8)
        fitness = np.array([1.0, 3.0, 2.0, 3.0])
        rng = np.random.default_rng(7)
        probe = np.random.default_rng(7)
        out = next_generation_matrix(pop, fitness, cfg, rng)
        # stable sort on descending fitness: indices 1, 3, 2, 0
        np.testing.assert_array_equal(out, pop[[1, 3, 2, 0]])
        assert rng.integers(1 << 30) == probe.integers(1 << 30)

    def test_elites_survive_and_shape_holds(self):
        cfg = GAConfig(population_size=8, elitism=2, mutation_rate=0.0)
        rng = np.random.default_rng(11)
        pop = rng.integers(0, 2, size=(8, 13), dtype=np.int8)
        fitness = np.arange(8.0)
        out = next_generation_matrix(pop, fitness, cfg, rng)
        assert out.shape == (8, 13)
        np.testing.assert_array_equal(out[0], pop[7])
        np.testing.assert_array_equal(out[1], pop[6])
        # with zero mutation every child is built from parent material
        pop_rows = {tuple(row) for row in pop.tolist()}
        cuts = {tuple(row) for row in out.tolist()}
        # children are crossovers of population rows: every bit column-slice
        # of a child matches some parent prefix/suffix; cheap sanity — each
        # child's bits are drawn from {0, 1} rows of the population matrix
        assert cuts <= {
            tuple(np.where(np.arange(13) < c, np.asarray(a), np.asarray(b)).tolist())
            for a in pop_rows
            for b in pop_rows
            for c in range(14)
        }

    def test_vectorized_wrapper_round_trips_tuples(self):
        ga = GeneticAlgorithm(GAConfig(population_size=6))
        rng = np.random.default_rng(5)
        population = ga.initial_population(13, rng)
        out = ga.next_generation_vectorized(population, np.arange(6.0), rng)
        assert len(out) == 6
        assert all(isinstance(row, tuple) and len(row) == 13 for row in out)
        assert all(set(row) <= {0, 1} for row in out)


class TestGenerationTensor:
    """The stacked (R, P, L) step replays each replication's matrix step.

    Contract (load-bearing for stacked evaluation,
    ``repro.experiments.replication.run_replications_stacked``): row ``r``
    of ``next_generation_tensor`` is bit-identical to
    ``next_generation_matrix(populations[r], fitness[r], cfg, rngs[r])``
    with a fresh generator on the same stream — per-replication rng
    streams never observe that the other replications exist.
    """

    @SETTINGS
    @given(
        seed=seeds,
        n_rep=st.integers(1, 4),
        elitism=st.integers(0, 3),
    )
    def test_rows_bit_identical_to_matrix_step(self, seed, n_rep, elitism):
        cfg = GAConfig(population_size=6, elitism=elitism)
        base = np.random.default_rng(seed + 17)
        pops = base.integers(0, 2, size=(n_rep, 6, 13), dtype=np.int8)
        fitness = base.random((n_rep, 6))
        tensor_rngs = [np.random.default_rng((seed, r)) for r in range(n_rep)]
        matrix_rngs = [np.random.default_rng((seed, r)) for r in range(n_rep)]
        out = next_generation_tensor(pops, fitness, cfg, tensor_rngs)
        assert out.shape == (n_rep, 6, 13)
        for r in range(n_rep):
            expected = next_generation_matrix(
                pops[r], fitness[r], cfg, matrix_rngs[r]
            )
            np.testing.assert_array_equal(out[r], expected, err_msg=f"rep {r}")
            # both implementations left stream r at the same point
            assert tensor_rngs[r].integers(1 << 30) == matrix_rngs[r].integers(
                1 << 30
            )

    def test_rng_count_mismatch_rejected(self):
        cfg = GAConfig(population_size=4)
        with pytest.raises(ValueError, match="rngs"):
            next_generation_tensor(
                np.zeros((2, 4, 13), dtype=np.int8),
                np.ones((2, 4)),
                cfg,
                [np.random.default_rng(0)],
            )

    def test_shape_validation(self):
        cfg = GAConfig(population_size=4)
        rngs = [np.random.default_rng(0)]
        with pytest.raises(ValueError, match="bit tensor"):
            next_generation_tensor(
                np.zeros((4, 13), dtype=np.int8), np.ones((1, 4)), cfg, rngs
            )
        with pytest.raises(ValueError, match="population size"):
            next_generation_tensor(
                np.zeros((1, 3, 13), dtype=np.int8), np.ones((1, 3)), cfg, rngs
            )
        with pytest.raises(ValueError, match="fitness"):
            next_generation_tensor(
                np.zeros((1, 4, 13), dtype=np.int8), np.ones((2, 4)), cfg, rngs
            )

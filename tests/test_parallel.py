"""Unit tests for the parallel execution layer.

The critical property: results are bit-identical whether replications run
serially or across processes, in any completion order.
"""

from __future__ import annotations

import io
import os
import signal
import time
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.parallel.pool import default_processes, parallel_map
from repro.parallel.progress import ProgressPrinter


def square(x: int) -> int:
    return x * x


def boom(x: int) -> int:
    if x == 2:
        raise RuntimeError("task 2 exploded")
    return x


def boom_or_mark(args: tuple[str, int]) -> int:
    """Fail instantly on task 0; otherwise sleep briefly and leave a marker."""
    directory, x = args
    if x == 0:
        raise RuntimeError("task 0 exploded")
    time.sleep(0.3)
    Path(directory, f"ran-{x}").touch()
    return x


def sleepy_square(x: int) -> int:
    time.sleep(0.05 * (4 - x))  # later items finish first
    return x * x


def die_once_then_square(args: tuple[str, int]) -> int:
    """SIGKILL the worker on item 3's first attempt; succeed on the retry."""
    directory, x = args
    if x == 3:
        marker = Path(directory, "died")
        if not marker.exists():
            marker.touch()
            os.kill(os.getpid(), signal.SIGKILL)
    return x * x


class TestParallelMap:
    def test_empty(self):
        assert parallel_map(square, []) == []

    def test_serial_path(self):
        assert parallel_map(square, [1, 2, 3], processes=1) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        out = parallel_map(square, list(range(20)), processes=2)
        assert out == [x * x for x in range(20)]

    def test_parallel_equals_serial(self):
        items = list(range(12))
        assert parallel_map(square, items, processes=2) == parallel_map(
            square, items, processes=1
        )

    def test_exception_propagates_serial(self):
        with pytest.raises(RuntimeError, match="task 2"):
            parallel_map(boom, [1, 2, 3], processes=1)

    def test_exception_propagates_parallel(self):
        with pytest.raises(RuntimeError, match="task 2"):
            parallel_map(boom, [1, 2, 3], processes=2)

    def test_worker_exception_cancels_outstanding_futures(self, tmp_path):
        """A failing task aborts the run without draining the queue.

        Task 0 fails the moment a worker picks it up; the other tasks sleep
        and then drop a marker file.  Only tasks already in flight when the
        failure is observed may still run (running futures cannot be
        cancelled) — the long tail of queued tasks must never start.
        """
        items = [(str(tmp_path), x) for x in range(12)]
        with pytest.raises(RuntimeError, match="task 0"):
            parallel_map(boom_or_mark, items, processes=2)
        ran = list(tmp_path.glob("ran-*"))
        assert len(ran) < 11  # queue not drained: some futures were cancelled

    def test_original_exception_type_and_args_preserved(self):
        with pytest.raises(RuntimeError) as excinfo:
            parallel_map(boom, [2], processes=1)
        assert excinfo.value.args == ("task 2 exploded",)

    def test_order_preserved_under_out_of_order_completion(self):
        """Items that complete last-to-first still come back in input order."""
        items = [0, 1, 2, 3]
        assert parallel_map(sleepy_square, items, processes=4) == [
            0,
            1,
            4,
            9,
        ]

    def test_invalid_processes(self):
        with pytest.raises(ValueError):
            parallel_map(square, [1], processes=0)

    def test_progress_callback_serial(self):
        calls = []
        parallel_map(
            square, [1, 2, 3], processes=1, progress=lambda d, t: calls.append((d, t))
        )
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_progress_callback_parallel(self):
        calls = []
        parallel_map(
            square,
            [1, 2, 3, 4],
            processes=2,
            progress=lambda d, t: calls.append((d, t)),
        )
        assert len(calls) == 4
        assert calls[-1][0] == 4

    def test_default_processes(self):
        assert default_processes(0) == 1
        assert default_processes(1) == 1
        assert default_processes(1000) >= 1

    def test_worker_death_propagates_by_default(self, tmp_path):
        """A SIGKILLed worker breaks the executor; without a re-dispatch
        budget the BrokenProcessPool must reach the caller."""
        items = [(str(tmp_path), x) for x in range(6)]
        with pytest.raises(BrokenProcessPool):
            parallel_map(die_once_then_square, items, processes=2)

    def test_worker_death_redispatch_recovers(self, tmp_path):
        """With max_redispatch=1 the pool is rebuilt and the unfinished
        tasks re-run; the dead worker's task succeeds on its second try."""
        items = [(str(tmp_path), x) for x in range(6)]
        out = parallel_map(
            die_once_then_square, items, processes=2, max_redispatch=1
        )
        assert out == [x * x for x in range(6)]

    def test_invalid_max_redispatch(self):
        with pytest.raises(ValueError):
            parallel_map(square, [1, 2], processes=2, max_redispatch=-1)


class TestProgressPrinter:
    def test_prints_progress(self):
        stream = io.StringIO()
        printer = ProgressPrinter("caseX", stream=stream)
        printer(1, 4)
        printer(2, 4)
        out = stream.getvalue()
        assert "caseX: 1/4" in out
        assert "caseX: 2/4" in out
        assert printer.finish() >= 0.0

    def test_one_line_per_completion_with_elapsed(self):
        stream = io.StringIO()
        printer = ProgressPrinter("sweep", stream=stream)
        for done in range(1, 4):
            printer(done, 3)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 3
        for line in lines:
            assert line.startswith("sweep: ")
            assert "replications (" in line and "s elapsed)" in line

    def test_finish_monotonic(self):
        printer = ProgressPrinter("x", stream=io.StringIO())
        first = printer.finish()
        time.sleep(0.01)
        assert printer.finish() >= first

    def test_usable_as_parallel_map_progress(self):
        stream = io.StringIO()
        printer = ProgressPrinter("map", stream=stream)
        parallel_map(square, [1, 2], processes=1, progress=printer)
        out = stream.getvalue()
        assert "map: 1/2" in out
        assert "map: 2/2" in out


class TestExperimentDeterminismAcrossWorkers:
    def test_worker_count_does_not_change_results(self):
        """replication i derives its stream from (seed, i), so 1 vs 2 workers
        must give identical aggregates."""
        cfg = ExperimentConfig.for_case("case1", scale="smoke", replications=2)
        serial = run_experiment(cfg, processes=1)
        parallel = run_experiment(cfg, processes=2)
        assert serial.to_dict() == parallel.to_dict()

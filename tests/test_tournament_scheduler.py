"""Unit and property tests for the seating scheduler (§4.4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tournament.scheduler import iter_seatings


class TestBasicScheme:
    def test_paper_shape_two_seatings(self, rng):
        """N=100, P=50, L=1: exactly two disjoint seatings of 50."""
        seatings = list(iter_seatings(range(100), 50, 1, rng))
        assert len(seatings) == 2
        assert all(len(s) == 50 for s in seatings)
        assert set(seatings[0]) | set(seatings[1]) == set(range(100))
        assert set(seatings[0]) & set(seatings[1]) == set()

    def test_l_twice(self, rng):
        seatings = list(iter_seatings(range(10), 5, 2, rng))
        plays = {pid: 0 for pid in range(10)}
        for s in seatings:
            for pid in s:
                plays[pid] += 1
        # Everyone reaches L; uneven random progress may force top-up
        # seatings in which already-complete players fill the empty seats,
        # so individual counts can exceed L (fitness is per-event, so extra
        # plays do not bias Eq. (1)).
        assert all(count >= 2 for count in plays.values())
        assert len(seatings) >= 4  # ceil(N*L / seats)

    def test_no_player_twice_in_one_seating(self, rng):
        for seating in iter_seatings(range(20), 7, 3, rng):
            assert len(set(seating)) == len(seating)

    def test_top_up_when_not_divisible(self, rng):
        """N*L not divisible by seats: everyone reaches L, fillers exceed it."""
        seatings = list(iter_seatings(range(10), 4, 1, rng))
        plays = {pid: 0 for pid in range(10)}
        for s in seatings:
            assert len(s) == 4
            for pid in s:
                plays[pid] += 1
        assert all(count >= 1 for count in plays.values())
        assert sum(plays.values()) == 4 * len(seatings)

    def test_seats_larger_than_population_rejected(self, rng):
        with pytest.raises(ValueError):
            list(iter_seatings(range(3), 5, 1, rng))

    def test_plays_required_validated(self, rng):
        with pytest.raises(ValueError):
            list(iter_seatings(range(5), 2, 0, rng))

    def test_deterministic_under_seed(self):
        a = list(iter_seatings(range(30), 10, 2, np.random.default_rng(4)))
        b = list(iter_seatings(range(30), 10, 2, np.random.default_rng(4)))
        assert a == b


class TestProperties:
    @given(
        st.integers(4, 40),  # population
        st.integers(2, 10),  # seats
        st.integers(1, 3),  # L
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40)
    def test_everyone_plays_at_least_l(self, n, seats, plays_required, seed):
        if seats > n:
            return
        rng = np.random.default_rng(seed)
        plays = {pid: 0 for pid in range(n)}
        for seating in iter_seatings(range(n), seats, plays_required, rng):
            assert len(seating) == seats
            assert len(set(seating)) == seats
            for pid in seating:
                plays[pid] += 1
        assert all(count >= plays_required for count in plays.values())

    def test_seatings_are_random(self):
        """Different seeds give different partitions (statistically certain)."""
        a = list(iter_seatings(range(100), 50, 1, np.random.default_rng(1)))
        b = list(iter_seatings(range(100), 50, 1, np.random.default_rng(2)))
        assert set(a[0]) != set(b[0])

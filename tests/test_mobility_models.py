"""Unit tests for the mobility models (trajectories, determinism, churn)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility import GaussMarkov, MobilityModel, NodeChurn, RandomWaypoint

N = 12
STEPS = 60


def trajectory(model, seed, steps=STEPS, n=N):
    rng = np.random.default_rng(seed)
    pos = model.reset(n, rng)
    out = [pos.copy()]
    for _ in range(steps):
        pos = model.step(pos, 1.0, rng)
        out.append(pos.copy())
    return np.stack(out)


MODEL_FACTORIES = {
    "waypoint": lambda: RandomWaypoint(0.01, 0.05, pause_time=1.0),
    "gauss-markov": lambda: GaussMarkov(0.03),
    "churn": lambda: NodeChurn(RandomWaypoint(0.01, 0.05), 0.1, 0.5),
}


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
    def test_same_seed_identical_trajectories(self, name):
        """Two instances driven by identically-seeded generators must trace
        bit-identical trajectories (satellite: determinism)."""
        a = trajectory(MODEL_FACTORIES[name](), seed=42)
        b = trajectory(MODEL_FACTORIES[name](), seed=42)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
    def test_different_seed_different_trajectories(self, name):
        a = trajectory(MODEL_FACTORIES[name](), seed=1)
        b = trajectory(MODEL_FACTORIES[name](), seed=2)
        assert not np.array_equal(a, b)

    def test_churn_mask_deterministic(self):
        masks = []
        for _ in range(2):
            model = NodeChurn(RandomWaypoint(0.01, 0.05), 0.2, 0.5)
            rng = np.random.default_rng(5)
            pos = model.reset(N, rng)
            seen = []
            for _ in range(STEPS):
                pos = model.step(pos, 1.0, rng)
                seen.append(model.active_mask().copy())
            masks.append(np.stack(seen))
        np.testing.assert_array_equal(masks[0], masks[1])


class TestBounds:
    @pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
    def test_positions_stay_in_unit_square(self, name):
        traj = trajectory(MODEL_FACTORIES[name](), seed=3)
        assert traj.min() >= 0.0 and traj.max() <= 1.0

    def test_gauss_markov_fast_nodes_reflect(self):
        traj = trajectory(GaussMarkov(0.2, alpha=0.5, direction_sigma=1.0), seed=4)
        assert traj.min() >= 0.0 and traj.max() <= 1.0


class TestRandomWaypoint:
    def test_zero_speed_is_stationary(self):
        traj = trajectory(RandomWaypoint(0.0, 0.0), seed=6, steps=10)
        for step in traj[1:]:
            np.testing.assert_array_equal(step, traj[0])

    def test_nodes_move_toward_targets(self):
        model = RandomWaypoint(0.02, 0.02, pause_time=0.0)
        rng = np.random.default_rng(7)
        pos = model.reset(N, rng)
        targets = model._targets.copy()
        new = model.step(pos, 1.0, rng)
        before = np.hypot(*(targets - pos).T)
        after_targets = np.hypot(*(targets - new).T)
        # every node got closer to (or reached) its waypoint
        assert (after_targets <= before + 1e-12).all()

    def test_pause_on_arrival(self):
        model = RandomWaypoint(0.5, 0.5, pause_time=3.0)
        rng = np.random.default_rng(8)
        pos = model.reset(3, rng)
        # with speed 0.5 every node reaches its target within a few steps
        for _ in range(4):
            pos = model.step(pos, 1.0, rng)
        assert (model._pause_left > 0).any()

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWaypoint(0.5, 0.1)
        with pytest.raises(ValueError):
            RandomWaypoint(0.1, 0.5, pause_time=-1.0)

    def test_step_before_reset_raises(self):
        with pytest.raises(RuntimeError):
            RandomWaypoint(0.0, 0.1).step(
                np.zeros((3, 2)), 1.0, np.random.default_rng(0)
            )


class TestGaussMarkov:
    def test_speed_stays_nonnegative(self):
        model = GaussMarkov(0.001, alpha=0.1, speed_sigma=0.05)
        rng = np.random.default_rng(9)
        pos = model.reset(N, rng)
        for _ in range(STEPS):
            pos = model.step(pos, 1.0, rng)
            assert (model._speed >= 0.0).all()

    def test_high_alpha_smoother_than_low_alpha(self):
        """With alpha near 1 headings barely change step to step."""

        def heading_change(alpha):
            model = GaussMarkov(0.05, alpha=alpha, direction_sigma=1.0)
            rng = np.random.default_rng(10)
            pos = model.reset(N, rng)
            model.step(pos, 1.0, rng)
            before = model._dir.copy()
            model.step(pos, 1.0, rng)
            return np.abs(model._dir - before).mean()

        assert heading_change(0.99) < heading_change(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussMarkov(-0.1)
        with pytest.raises(ValueError):
            GaussMarkov(0.1, alpha=1.5)


class TestNodeChurn:
    def test_all_present_initially(self):
        model = NodeChurn(RandomWaypoint(0.0, 0.0), 0.5, 0.5)
        model.reset(N, np.random.default_rng(11))
        assert model.active_mask().all()

    def test_no_churn_without_leave_probability(self):
        model = NodeChurn(RandomWaypoint(0.01, 0.05), 0.0, 0.5)
        rng = np.random.default_rng(12)
        pos = model.reset(N, rng)
        for _ in range(STEPS):
            pos = model.step(pos, 1.0, rng)
            assert model.active_mask().all()

    def test_certain_leave_and_return_alternate(self):
        model = NodeChurn(RandomWaypoint(0.0, 0.0), 1.0, 1.0)
        rng = np.random.default_rng(13)
        pos = model.reset(N, rng)
        pos = model.step(pos, 1.0, rng)
        assert not model.active_mask().any()
        pos = model.step(pos, 1.0, rng)
        assert model.active_mask().all()

    def test_nodes_leave_and_rejoin_eventually(self):
        model = NodeChurn(RandomWaypoint(0.01, 0.05), 0.2, 0.5)
        rng = np.random.default_rng(14)
        pos = model.reset(N, rng)
        ever_away = np.zeros(N, dtype=bool)
        came_back = np.zeros(N, dtype=bool)
        for _ in range(STEPS):
            pos = model.step(pos, 1.0, rng)
            away = ~model.active_mask()
            came_back |= ever_away & ~away
            ever_away |= away
        assert ever_away.any() and came_back.any()

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeChurn(RandomWaypoint(0.0, 0.1), 1.5, 0.5)


class TestProtocol:
    @pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
    def test_models_satisfy_protocol(self, name):
        assert isinstance(MODEL_FACTORIES[name](), MobilityModel)

"""Unit tests for the ASCII table/plot renderers."""

from __future__ import annotations

import pytest

from repro.utils.tables import ascii_lineplot, format_table


class TestFormatTable:
    def test_basic_shape(self):
        out = format_table([[1, "a"], [22, "bb"]], headers=["n", "s"])
        lines = out.splitlines()
        assert lines[0].startswith("+")
        assert "| n" in lines[1]
        assert lines[-1].startswith("+")

    def test_title_line(self):
        out = format_table([[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table([[0.123456]], floatfmt=".3f")
        assert "0.123" in out
        assert "0.1234" not in out

    def test_column_alignment(self):
        out = format_table([["a", 1], ["longer", 2]])
        widths = {len(line) for line in out.splitlines()}
        assert len(widths) == 1  # all lines equal width

    def test_ragged_rows_padded(self):
        out = format_table([["a", "b"], ["c"]])
        assert out.count("|") > 0  # renders without raising

    def test_empty_rows_ok(self):
        out = format_table([], headers=["x"])
        assert "x" in out


class TestAsciiLineplot:
    def test_contains_markers_and_legend(self):
        out = ascii_lineplot({"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]})
        assert "o=up" in out
        assert "x=down" in out

    def test_respects_bounds(self):
        out = ascii_lineplot({"s": [0.5]}, ymin=0.0, ymax=1.0)
        assert "1" in out.splitlines()[0]

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_lineplot({})
        with pytest.raises(ValueError):
            ascii_lineplot({"s": []})

    def test_title(self):
        out = ascii_lineplot({"s": [1, 2]}, title="Figure")
        assert out.splitlines()[0] == "Figure"

    def test_flat_series_does_not_crash(self):
        out = ascii_lineplot({"s": [1.0, 1.0, 1.0]})
        assert "o" in out

    def test_canvas_width(self):
        out = ascii_lineplot({"s": [0, 1]}, width=40, ymin=0, ymax=1)
        plot_rows = [l for l in out.splitlines() if "|" in l]
        assert max(len(r) for r in plot_rows) <= 40 + 12  # width + label margin

"""Native K-shortest-paths vs networkx: the order-exact equivalence suite.

:class:`repro.network.ksp.PathSearch` replaces ``nx.shortest_simple_paths``
in every route hot loop, so its output must match networkx *exactly* — same
path sets, same order (ties included), same ``max_hops``/``max_paths``
truncation — across randomized geometric graphs and the edge cases the
oracles hit (disconnected components, direct-neighbour-only connectivity,
empty results, scoped subgraphs, query-time virtual edges).
"""

from __future__ import annotations

from itertools import islice

import networkx as nx
import numpy as np
import pytest

from repro.network.ksp import UNREACHABLE, PathSearch, reference_simple_paths
from repro.network.topology import shortest_intermediate_paths


def geometric_graph(seed: int, n: int | None = None, radius: float | None = None):
    rng = np.random.default_rng(seed)
    if n is None:
        n = int(rng.integers(8, 40))
    if radius is None:
        radius = float(rng.uniform(0.18, 0.45))
    positions = rng.random((n, 2))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if np.sum((positions[i] - positions[j]) ** 2) <= radius * radius:
                graph.add_edge(i, j)
    return graph, rng


class TestRandomizedEquivalence:
    """~100 seeded random geometric graphs, native vs networkx."""

    @pytest.mark.parametrize("seed", range(50))
    def test_simple_paths_match_networkx_order(self, seed):
        graph, rng = geometric_graph(seed)
        search = PathSearch(graph)
        n = graph.number_of_nodes()
        for _ in range(6):
            s, t = (int(x) for x in rng.choice(n, size=2, replace=False))
            for limit, max_hops in ((12, 4), (6, 10), (25, 3), (1, 10)):
                expected = list(
                    islice(reference_simple_paths(graph, s, t, max_hops), limit)
                )
                assert search.simple_paths(s, t, max_hops, limit=limit) == (
                    expected
                ), f"simple_paths({s}, {t}, {max_hops})[:{limit}] diverged"

    @pytest.mark.parametrize("seed", range(50, 100))
    def test_intermediate_paths_match_reference(self, seed):
        """Same truncation semantics as shortest_intermediate_paths."""
        graph, rng = geometric_graph(seed)
        search = PathSearch(graph)
        n = graph.number_of_nodes()
        for _ in range(6):
            s, t = (int(x) for x in rng.choice(n, size=2, replace=False))
            for max_paths, max_hops in ((3, 10), (1, 5), (8, 3), (2, 4)):
                expected = [
                    tuple(p)
                    for p in shortest_intermediate_paths(
                        graph, s, t, max_paths, max_hops
                    )
                ]
                got = search.intermediate_paths(s, t, max_paths, max_hops)
                assert got == expected

    @pytest.mark.parametrize("seed", [3, 17, 29])
    def test_scoped_and_virtual_edges_match_networkx(self, seed):
        """Scope == nx subgraph; extra_edges == temporary add_edges_from."""
        graph, rng = geometric_graph(seed, n=25)
        search = PathSearch(graph)
        nodes = list(graph)
        for trial in range(8):
            scope = frozenset(
                int(x) for x in rng.choice(25, size=18, replace=False)
            )
            s, t = sorted(scope)[0], sorted(scope)[-1]
            extra = [(s, sorted(scope)[len(scope) // 2])]
            extra = [(a, b) for a, b in extra if not graph.has_edge(a, b)]
            graph.add_edges_from(extra)
            try:
                expected = [
                    tuple(p)
                    for p in shortest_intermediate_paths(
                        graph.subgraph(scope), s, t, 4, 8
                    )
                ]
            finally:
                graph.remove_edges_from(extra)
            got = search.intermediate_paths(
                s, t, 4, 8, scope=scope, extra_edges=extra
            )
            assert got == expected
        assert nodes == list(graph)  # the emulation restored the graph


class TestEdgeCases:
    def test_disconnected_components_yield_nothing(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (3, 4), (4, 5)])
        search = PathSearch(graph)
        assert search.intermediate_paths(0, 4, 3, 10) == []
        assert search.simple_paths(0, 4, 10) == []
        assert search.hop_distance(0, 4) == UNREACHABLE

    def test_direct_neighbour_only_is_empty(self):
        """Two nodes joined only by the direct edge: no game to play."""
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2)])
        search = PathSearch(graph)
        assert search.intermediate_paths(0, 1, 3, 10) == []
        # but the raw enumeration still reports the direct route
        assert search.simple_paths(0, 1, 10) == [[0, 1]]

    def test_unknown_endpoints_are_empty(self):
        graph = nx.path_graph(4)
        search = PathSearch(graph)
        assert search.intermediate_paths(0, 99, 3, 10) == []
        assert search.intermediate_paths(99, 0, 3, 10) == []

    def test_nonpositive_max_paths_is_empty(self):
        graph = nx.cycle_graph(5)
        search = PathSearch(graph)
        assert search.intermediate_paths(0, 2, 0, 10) == []

    def test_max_hops_truncation_matches_break_semantics(self):
        """A long detour past max_hops stops the enumeration, as the
        consumer's ``break`` on the first too-long path always did."""
        graph = nx.Graph()
        nx.add_path(graph, [0, 1, 2])
        nx.add_path(graph, [0, 3, 4, 5, 6, 2])
        search = PathSearch(graph)
        assert search.intermediate_paths(0, 2, 5, max_hops=2) == [(1,)]
        assert search.intermediate_paths(0, 2, 5, max_hops=5) == [
            (1,),
            (3, 4, 5, 6),
        ]

    def test_source_equals_target_matches_networkx(self):
        graph = nx.cycle_graph(6)
        search = PathSearch(graph)
        assert search.simple_paths(2, 2, 10) == [[2]]
        assert search.intermediate_paths(2, 2, 3, 10) == []

    def test_cycle_graph_two_routes(self):
        graph = nx.cycle_graph(7)
        search = PathSearch(graph)
        assert search.simple_paths(0, 3, 10) == [
            [0, 1, 2, 3],
            [0, 6, 5, 4, 3],
        ]


class TestHopFields:
    def test_distances_match_networkx_bfs(self):
        graph, _ = geometric_graph(11, n=30)
        search = PathSearch(graph)
        lengths = dict(nx.all_pairs_shortest_path_length(graph))
        for s in graph:
            for t in graph:
                expected = lengths[s].get(t)
                got = search.hop_distance(s, t)
                if expected is None:
                    assert got == UNREACHABLE
                else:
                    assert got == expected

    def test_bounded_field_extends_on_demand(self):
        graph = nx.path_graph(9)
        search = PathSearch(graph)
        rows = search.hop_fields(bound=3)
        assert rows[0][3] == 3
        assert rows[0][8] == UNREACHABLE  # beyond the sweep bound
        rows = search.hop_fields(bound=8)
        assert rows[0][8] == 8

    def test_covers_all_detects_full_scope(self):
        graph = nx.cycle_graph(5)
        search = PathSearch(graph)
        assert search.covers_all(frozenset(range(5)))
        assert search.covers_all(frozenset(range(9)))  # supersets count
        assert not search.covers_all(frozenset(range(4)))

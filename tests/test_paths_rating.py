"""Unit and property tests for path rating and best-path selection (§3.1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.paths.rating import best_path_index, rate_path
from repro.reputation.records import ReputationTable


def table_with_rates(rates: dict[int, tuple[int, int]]) -> ReputationTable:
    """Build a table from {subject: (forwarded, dropped)} observations."""
    t = ReputationTable()
    for subject, (forwarded, dropped) in rates.items():
        for _ in range(forwarded):
            t.record(subject, True)
        for _ in range(dropped):
            t.record(subject, False)
    return t


class TestRatePath:
    def test_product_of_known_rates(self):
        t = table_with_rates({1: (1, 1), 2: (3, 1)})  # rates 0.5 and 0.75
        assert rate_path(t, (1, 2)) == pytest.approx(0.375)

    def test_unknown_nodes_rate_half(self):
        t = ReputationTable()
        assert rate_path(t, (7, 8)) == pytest.approx(0.25)

    def test_empty_path_rates_one(self):
        assert rate_path(ReputationTable(), ()) == 1.0

    def test_mixed_known_unknown(self):
        t = table_with_rates({1: (4, 0)})  # rate 1.0
        assert rate_path(t, (1, 99)) == pytest.approx(0.5)

    def test_custom_unknown_rate(self):
        assert rate_path(ReputationTable(), (5,), unknown_rate=0.9) == 0.9

    def test_zero_rate_zeroes_path(self):
        t = table_with_rates({1: (0, 3)})
        assert rate_path(t, (1, 2, 3)) == 0.0


class TestBestPathIndex:
    def test_prefers_known_good_over_unknown(self):
        t = table_with_rates({1: (9, 1)})  # 0.9 > 0.5 (unknown)
        assert best_path_index(t, [(99,), (1,)]) == 1

    def test_prefers_unknown_over_known_bad(self):
        t = table_with_rates({1: (1, 9)})  # 0.1 < 0.5
        assert best_path_index(t, [(1,), (99,)]) == 1

    def test_tie_takes_first(self):
        t = ReputationTable()
        assert best_path_index(t, [(7, 8), (9, 10)]) == 0

    def test_single_path(self):
        assert best_path_index(ReputationTable(), [(1, 2, 3)]) == 0

    def test_no_paths_rejected(self):
        with pytest.raises(ValueError):
            best_path_index(ReputationTable(), [])

    def test_avoids_known_dropper(self):
        """The Table 5 mechanism: sources route around CSN when possible."""
        t = table_with_rates({50: (0, 10), 1: (5, 5), 2: (5, 5)})
        # path through CSN node 50 rates 0; alternative rates 0.25
        assert best_path_index(t, [(50, 1), (1, 2)]) == 1

    def test_shorter_unknown_path_beats_longer(self):
        t = ReputationTable()
        # 0.5 vs 0.25: fewer unknown hops rate higher
        assert best_path_index(t, [(7, 8), (9,)]) == 1


observations = st.dictionaries(
    st.integers(0, 5),
    st.tuples(st.integers(0, 5), st.integers(0, 5)),
    max_size=6,
)
paths = st.lists(
    st.lists(st.integers(0, 9), min_size=1, max_size=4, unique=True).map(tuple),
    min_size=1,
    max_size=4,
)


class TestProperties:
    @given(observations, paths)
    def test_rating_in_unit_interval(self, obs, path_list):
        t = table_with_rates(obs)
        for p in path_list:
            assert 0.0 <= rate_path(t, p) <= 1.0

    @given(observations, paths)
    def test_best_index_is_argmax(self, obs, path_list):
        t = table_with_rates(obs)
        idx = best_path_index(t, path_list)
        ratings = [rate_path(t, p) for p in path_list]
        assert ratings[idx] == max(ratings)
        # first-wins tie-break
        assert idx == ratings.index(max(ratings))

    @given(
        observations,
        st.lists(st.integers(0, 9), min_size=1, max_size=5, unique=True),
    )
    def test_extending_a_path_never_raises_rating(self, obs, path):
        t = table_with_rates(obs)
        for cut in range(1, len(path)):
            assert rate_path(t, path[: cut + 1]) <= rate_path(t, path[:cut]) + 1e-12

"""Unit tests for the tournament statistics counters."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.game.stats import RequestCounters, TournamentStats


class TestRequestCounters:
    def test_record_all_categories(self):
        c = RequestCounters()
        c.record(responder_selfish=False, forwarded=True)
        c.record(responder_selfish=False, forwarded=False)
        c.record(responder_selfish=True, forwarded=False)
        assert c.accepted_by_nn == 1
        assert c.rejected_by_nn == 1
        assert c.rejected_by_csn == 1
        assert c.total == 3

    def test_fractions_sum_to_one(self):
        c = RequestCounters(accepted_by_nn=7, rejected_by_nn=2, rejected_by_csn=1)
        total = (
            c.fraction_accepted()
            + c.fraction_rejected_by_nn()
            + c.fraction_rejected_by_csn()
        )
        assert abs(total - 1.0) < 1e-12

    def test_empty_fractions_are_zero(self):
        c = RequestCounters()
        assert c.fraction_accepted() == 0.0

    def test_merge(self):
        a = RequestCounters(accepted_by_nn=1)
        b = RequestCounters(accepted_by_nn=2, rejected_by_csn=3)
        a.merge(b)
        assert a.accepted_by_nn == 3
        assert a.rejected_by_csn == 3

    def test_dict_roundtrip(self):
        c = RequestCounters(accepted_by_nn=1, rejected_by_nn=2)
        assert RequestCounters.from_dict(c.to_dict()) == c


class TestTournamentStats:
    def test_cooperation_level(self):
        s = TournamentStats()
        for success in (True, True, False, True):
            s.record_game(source_selfish=False, success=success)
        s.record_game(source_selfish=True, success=False)
        assert s.cooperation_level == 0.75
        assert s.csn_delivery_level == 0.0

    def test_cooperation_empty_is_zero(self):
        assert TournamentStats().cooperation_level == 0.0

    def test_path_choice_tracking(self):
        s = TournamentStats()
        s.record_path_choice(source_selfish=False, contains_csn=False)
        s.record_path_choice(source_selfish=False, contains_csn=True)
        s.record_path_choice(source_selfish=True, contains_csn=True)
        assert s.nn_paths_chosen == 2
        assert s.nn_csn_free_paths == 1
        assert s.nn_csn_free_fraction == 0.5
        assert s.csn_paths_chosen == 1

    def test_requests_split_by_source(self):
        s = TournamentStats()
        s.record_request(source_selfish=False, responder_selfish=True, forwarded=False)
        s.record_request(source_selfish=True, responder_selfish=False, forwarded=True)
        assert s.requests_from_nn.rejected_by_csn == 1
        assert s.requests_from_csn.accepted_by_nn == 1

    def test_merge_all_fields(self):
        a, b = TournamentStats(), TournamentStats()
        a.record_game(False, True)
        b.record_game(False, False)
        b.record_game(True, True)
        b.record_path_choice(False, False)
        b.record_request(False, False, True)
        a.merge(b)
        assert a.nn_originated == 2
        assert a.nn_delivered == 1
        assert a.csn_delivered == 1
        assert a.nn_paths_chosen == 1
        assert a.requests_from_nn.accepted_by_nn == 1

    def test_dict_roundtrip(self):
        s = TournamentStats()
        s.record_game(False, True)
        s.record_request(True, False, False)
        s.record_path_choice(False, True)
        restored = TournamentStats.from_dict(s.to_dict())
        assert restored.to_dict() == s.to_dict()

    @given(st.lists(st.tuples(st.booleans(), st.booleans()), max_size=60))
    def test_merge_equals_sequential_recording(self, games):
        merged_a, merged_b, sequential = (
            TournamentStats(),
            TournamentStats(),
            TournamentStats(),
        )
        half = len(games) // 2
        for selfish, success in games[:half]:
            merged_a.record_game(selfish, success)
            sequential.record_game(selfish, success)
        for selfish, success in games[half:]:
            merged_b.record_game(selfish, success)
            sequential.record_game(selfish, success)
        merged_a.merge(merged_b)
        assert merged_a.to_dict() == sequential.to_dict()

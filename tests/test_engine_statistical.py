"""Statistical-equivalence tier: the turbo engine vs the bit-identical trio.

The turbo engine's contract (see ``sim/turbo.py``) is that it reproduces the
*distributions* of the paper's outcome metrics, not any single trajectory.
This tier holds it to that claim with the harness in
:mod:`repro.analysis.equivalence`:

* two-sample KS and Mann-Whitney gates (p > 0.01) on final cooperation,
  mean fitness and request-acceptance distributions over
  ``REPRO_STAT_REPS`` (default 20) seeded replications per engine,
* confidence-band overlap on the Fig.-4-style cooperation curves,
* spot checks that the speculation machinery itself is exercised (games do
  replay) and that exact invariants hold regardless of speculation.

The reference sample comes from the fast engine; the trio is bit-identical
(``test_engine_equivalence.py``), so any of them defines the same reference
distribution.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis.equivalence import (
    collect_engine_samples,
    compare_samples,
    confidence_band_overlap,
)
from repro.core.strategy import Strategy
from repro.experiments.config import ExperimentConfig
from repro.game.stats import TournamentStats
from repro.paths.distributions import LONGER_PATHS, SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.sim import make_engine

#: Replications per engine for the distribution gates.  The acceptance bar
#: is >= 20; override with REPRO_STAT_REPS for deeper local sweeps.
N_REPS = int(os.environ.get("REPRO_STAT_REPS", "20"))
ALPHA = 0.01


@pytest.fixture(scope="module")
def ensembles():
    """(fast samples/curves, turbo samples/curves) on the case-3 smoke
    config — case 3 exercises every environment class TE1-TE4."""
    config = ExperimentConfig.for_case("case3", scale="smoke", seed=424243)
    fast = collect_engine_samples(config.with_(engine="fast"), N_REPS)
    turbo = collect_engine_samples(config.with_(engine="turbo"), N_REPS)
    return fast, turbo


class TestTurboStatisticalEquivalence:
    def test_cooperation_and_fitness_distributions_match(self, ensembles):
        (fast_samples, fast_curves), (turbo_samples, turbo_curves) = ensembles
        report = compare_samples(
            fast_samples,
            turbo_samples,
            alpha=ALPHA,
            curves_a=fast_curves,
            curves_b=turbo_curves,
            min_overlap=0.8,
        )
        assert report.equivalent, (
            "turbo deviates from the reference distribution: "
            + "; ".join(report.failures())
        )
        # every gate individually, for a readable failure report
        for metric, results in report.tests.items():
            for result in results:
                assert result.pvalue > ALPHA, (
                    f"{metric}/{result.name} rejected: p={result.pvalue:.4g}"
                )

    def test_fig4_style_confidence_bands_overlap(self, ensembles):
        (_, fast_curves), (_, turbo_curves) = ensembles
        overlap = confidence_band_overlap(fast_curves, turbo_curves)
        assert overlap >= 0.8, f"cooperation bands overlap only {overlap:.2f}"

    def test_ensemble_means_close(self, ensembles):
        """Belt and braces: ensemble means within a few ensemble SEMs."""
        (fast_samples, _), (turbo_samples, _) = ensembles
        for metric in fast_samples:
            a, b = fast_samples[metric], turbo_samples[metric]
            sem = float(
                np.sqrt(a.var(ddof=1) / a.size + b.var(ddof=1) / b.size)
            )
            diff = abs(float(a.mean() - b.mean()))
            assert diff <= max(4 * sem, 1e-9), (
                f"{metric}: |mean diff| {diff:.4f} > 4*sem {4 * sem:.4f}"
            )


class TestSpeculationMachinery:
    """The statistical contract is only meaningful if speculation actually
    happens and its exact invariants hold."""

    def _run(self, hop_dist, seed, rounds=25, n_pop=20, n_csn=4):
        rng = np.random.default_rng(97)
        engine = make_engine("turbo", n_pop, n_csn)
        engine.set_strategies([Strategy.random(rng) for _ in range(n_pop)])
        participants = list(range(n_pop)) + engine.selfish_ids(n_csn)
        oracle = RandomPathOracle(np.random.default_rng(seed), hop_dist)
        stats = TournamentStats()
        engine.run_tournament(participants, rounds, oracle, stats, None, None)
        return engine, stats

    @pytest.mark.parametrize("hop_dist", [SHORTER_PATHS, LONGER_PATHS])
    def test_conflict_replay_is_exercised(self, hop_dist):
        engine, stats = self._run(hop_dist, seed=5)
        total = stats.nn_originated + stats.csn_originated
        assert engine._replayed_games > 0, "no game ever conflicted"
        assert engine._replayed_games < total, "everything replayed"

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_invariants_survive_speculation(self, seed):
        engine, stats = self._run(SHORTER_PATHS, seed)
        ps, pf = engine.ps, engine.pf
        assert (ps >= 0).all() and (pf >= 0).all()
        assert (pf <= ps).all()
        assert np.array_equal(engine.known, (ps > 0).sum(axis=1))
        assert np.array_equal(engine.pf_sum, pf.sum(axis=1))
        total = stats.nn_originated + stats.csn_originated
        assert total == 25 * 24  # rounds * participants: conservation
        assert int(engine.n_sent.sum()) == total
        # every request was answered by exactly one accept or reject
        answered = (
            stats.requests_from_nn.total + stats.requests_from_csn.total
        )
        assert answered == int(engine.n_fwd.sum() + engine.n_disc.sum()) + (
            # CSN decisions are counted in stats but not in the (dead)
            # CSN payoff accumulators
            stats.requests_from_nn.rejected_by_csn
            + stats.requests_from_csn.rejected_by_csn
        )

    def test_turbo_not_bit_identical_but_same_scale(self):
        """Documents the contract boundary: turbo diverges from the trio's
        trajectories (different draw stream) while landing on the same
        outcome scale."""
        rng = np.random.default_rng(11)
        strategies = [Strategy.random(rng) for _ in range(20)]
        outcomes = {}
        for name in ("fast", "turbo"):
            engine = make_engine(name, 20, 4)
            engine.set_strategies(strategies)
            participants = list(range(20)) + engine.selfish_ids(4)
            oracle = RandomPathOracle(np.random.default_rng(3), SHORTER_PATHS)
            stats = TournamentStats()
            engine.run_tournament(participants, 30, oracle, stats, None, None)
            outcomes[name] = stats.to_dict()
        assert outcomes["fast"] != outcomes["turbo"]  # trajectories diverge
        coop_fast = outcomes["fast"]["nn_delivered"]
        coop_turbo = outcomes["turbo"]["nn_delivered"]
        assert coop_fast > 0 and coop_turbo > 0
        # same scale: within a factor of 2 on a 30-round tournament
        assert 0.5 <= coop_turbo / coop_fast <= 2.0

"""Statistical-equivalence tier: every statistically-equivalent optimisation
vs the bit-identical trio.

Two relaxations live under this contract (see ``sim/turbo.py`` and
``network/provider.py``): the turbo engine reproduces the *distributions*
of the paper's outcome metrics without replaying any single trajectory, and
the ``approx`` route-cache policy serves drift-budgeted stale routes on
mobile topologies.  This tier holds both to that claim with the harness in
:mod:`repro.analysis.equivalence`:

* two-sample KS and Mann-Whitney gates (p > 0.01) on final cooperation,
  mean fitness and request-acceptance distributions over
  ``REPRO_STAT_REPS`` (default 20) seeded replications per configuration,
* confidence-band overlap on the Fig.-4-style cooperation curves,
* spot checks that the speculation machinery itself is exercised (games do
  replay) and that exact invariants hold regardless of speculation,
* a pinned-seed guard that the default ``exact`` policy keeps the
  reference/fast/batch trio bit-identical through the layered refactor.

The reference sample comes from the fast engine; the trio is bit-identical
(``test_engine_equivalence.py``), so any of them defines the same reference
distribution.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis.equivalence import (
    collect_engine_samples,
    compare_samples,
    confidence_band_overlap,
)
from repro.config.mobility import MobilityConfig
from repro.core.strategy import Strategy
from repro.experiments.config import ExperimentConfig
from repro.game.stats import TournamentStats
from repro.mobility import build_oracle
from repro.paths.distributions import LONGER_PATHS, SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.sim import BIT_IDENTICAL_ENGINES, make_engine

#: Replications per engine for the distribution gates.  The acceptance bar
#: is >= 20; override with REPRO_STAT_REPS for deeper local sweeps.
N_REPS = int(os.environ.get("REPRO_STAT_REPS", "20"))
ALPHA = 0.01

#: The per-round-mobility regime the approx policy exists for: topology
#: stepped every round with zero tolerance (every edge flip counts), at the
#: same slow waypoint drift as the perf ledger's mobile rows, with the
#: bench row's aggressive drift budget — the exact configuration whose
#: >= 2x throughput claim BENCH_ENGINE.json posts.
HIGH_MOBILITY = MobilityConfig(
    model="waypoint",
    speed_min=0.002,
    speed_max=0.008,
    tolerance=0.0,
    step_every="round",
)
APPROX_BUDGET = 240


@pytest.fixture(scope="module")
def ensembles():
    """(fast samples/curves, turbo samples/curves) on the case-3 smoke
    config — case 3 exercises every environment class TE1-TE4."""
    config = ExperimentConfig.for_case("case3", scale="smoke", seed=424243)
    fast = collect_engine_samples(config.with_(engine="fast"), N_REPS)
    turbo = collect_engine_samples(config.with_(engine="turbo"), N_REPS)
    return fast, turbo


class TestTurboStatisticalEquivalence:
    def test_cooperation_and_fitness_distributions_match(self, ensembles):
        (fast_samples, fast_curves), (turbo_samples, turbo_curves) = ensembles
        report = compare_samples(
            fast_samples,
            turbo_samples,
            alpha=ALPHA,
            curves_a=fast_curves,
            curves_b=turbo_curves,
            min_overlap=0.8,
        )
        assert report.equivalent, (
            "turbo deviates from the reference distribution: "
            + "; ".join(report.failures())
        )
        # every gate individually, for a readable failure report
        for metric, results in report.tests.items():
            for result in results:
                assert result.pvalue > ALPHA, (
                    f"{metric}/{result.name} rejected: p={result.pvalue:.4g}"
                )

    def test_fig4_style_confidence_bands_overlap(self, ensembles):
        (_, fast_curves), (_, turbo_curves) = ensembles
        overlap = confidence_band_overlap(fast_curves, turbo_curves)
        assert overlap >= 0.8, f"cooperation bands overlap only {overlap:.2f}"

    def test_ensemble_means_close(self, ensembles):
        """Belt and braces: ensemble means within a few ensemble SEMs."""
        (fast_samples, _), (turbo_samples, _) = ensembles
        for metric in fast_samples:
            a, b = fast_samples[metric], turbo_samples[metric]
            sem = float(
                np.sqrt(a.var(ddof=1) / a.size + b.var(ddof=1) / b.size)
            )
            diff = abs(float(a.mean() - b.mean()))
            assert diff <= max(4 * sem, 1e-9), (
                f"{metric}: |mean diff| {diff:.4f} > 4*sem {4 * sem:.4f}"
            )


@pytest.fixture(scope="module")
def fused_ensemble():
    """Fused-engine samples/curves on the same case-3 smoke config as the
    turbo tier (same seed, so the reference ensemble is shared)."""
    config = ExperimentConfig.for_case("case3", scale="smoke", seed=424243)
    return collect_engine_samples(config.with_(engine="fused"), N_REPS)


class TestFusedStatisticalEquivalence:
    """The generation-fused engine rides two relaxations at once (turbo's
    speculation plus cross-tournament fusion, paired with the
    phase-vectorized GA step) — it is held to exactly the gates turbo
    passes, against the same bit-identical reference ensemble."""

    def test_cooperation_and_fitness_distributions_match(
        self, ensembles, fused_ensemble
    ):
        (fast_samples, fast_curves), _ = ensembles
        fused_samples, fused_curves = fused_ensemble
        report = compare_samples(
            fast_samples,
            fused_samples,
            alpha=ALPHA,
            curves_a=fast_curves,
            curves_b=fused_curves,
            min_overlap=0.8,
        )
        assert report.equivalent, (
            "fused deviates from the reference distribution: "
            + "; ".join(report.failures())
        )
        for metric, results in report.tests.items():
            for result in results:
                assert result.pvalue > ALPHA, (
                    f"{metric}/{result.name} rejected: p={result.pvalue:.4g}"
                )

    def test_fig4_style_confidence_bands_overlap(self, ensembles, fused_ensemble):
        (_, fast_curves), _ = ensembles
        _, fused_curves = fused_ensemble
        overlap = confidence_band_overlap(fast_curves, fused_curves)
        assert overlap >= 0.8, f"cooperation bands overlap only {overlap:.2f}"

    def test_ensemble_means_close(self, ensembles, fused_ensemble):
        (fast_samples, _), _ = ensembles
        fused_samples, _ = fused_ensemble
        for metric in fast_samples:
            a, b = fast_samples[metric], fused_samples[metric]
            sem = float(
                np.sqrt(a.var(ddof=1) / a.size + b.var(ddof=1) / b.size)
            )
            diff = abs(float(a.mean() - b.mean()))
            assert diff <= max(4 * sem, 1e-9), (
                f"{metric}: |mean diff| {diff:.4f} > 4*sem {4 * sem:.4f}"
            )

    def test_fused_actually_diverges_from_turbo(self, ensembles, fused_ensemble):
        """Fusion + the phase-ordered GA step consume the stream in a
        different order than turbo's per-tournament loop; identical samples
        would mean the fused path silently wasn't exercised."""
        _, (turbo_samples, _) = ensembles
        fused_samples, _ = fused_ensemble
        assert any(
            not np.array_equal(turbo_samples[m], fused_samples[m])
            for m in turbo_samples
        )


@pytest.fixture(scope="module")
def mobile_ensembles():
    """(exact samples/curves, approx samples/curves) on the mobile smoke
    config — both on the fast engine, so the only varying factor is the
    route-cache policy."""
    config = ExperimentConfig.for_case(
        "mobile_waypoint", scale="smoke", seed=90521, engine="fast"
    )
    exact_config = config.with_(
        sim=config.sim.with_(mobility=HIGH_MOBILITY)
    )
    approx_config = config.with_(
        sim=config.sim.with_(
            mobility=HIGH_MOBILITY.with_(
                route_cache="approx", drift_budget=APPROX_BUDGET
            )
        )
    )
    exact = collect_engine_samples(exact_config, N_REPS)
    approx = collect_engine_samples(approx_config, N_REPS)
    return exact, approx


class TestApproxRouteCacheStatisticalEquivalence:
    """The approx policy's contract on mobile scenarios: same outcome
    distributions as exact, different trajectories."""

    def test_distributions_match(self, mobile_ensembles):
        (ex_samples, ex_curves), (ap_samples, ap_curves) = mobile_ensembles
        report = compare_samples(
            ex_samples,
            ap_samples,
            alpha=ALPHA,
            curves_a=ex_curves,
            curves_b=ap_curves,
            min_overlap=0.8,
        )
        assert report.equivalent, (
            "approx route cache deviates from the exact distribution: "
            + "; ".join(report.failures())
        )
        for metric, results in report.tests.items():
            for result in results:
                assert result.pvalue > ALPHA, (
                    f"{metric}/{result.name} rejected: p={result.pvalue:.4g}"
                )

    def test_confidence_bands_overlap(self, mobile_ensembles):
        (_, ex_curves), (_, ap_curves) = mobile_ensembles
        overlap = confidence_band_overlap(ex_curves, ap_curves)
        assert overlap >= 0.8, f"cooperation bands overlap only {overlap:.2f}"

    def test_approx_actually_diverges(self, mobile_ensembles):
        """The gate is meaningful only if the policies trace different
        trajectories — identical ensembles would vacuously pass."""
        (ex_samples, _), (ap_samples, _) = mobile_ensembles
        assert any(
            not np.array_equal(ex_samples[m], ap_samples[m])
            for m in ex_samples
        )


class TestExactPolicyPinnedTrio:
    """--route-cache exact (the default) must keep the reference/fast/batch
    trio bit-identical through the layered route-provider refactor."""

    def _run(self, engine_name, route_cache):
        config = HIGH_MOBILITY.with_(route_cache=route_cache)
        oracle = build_oracle(config, list(range(24)), np.random.default_rng(5))
        engine = make_engine(engine_name, 20, 4)
        rng = np.random.default_rng(17)
        engine.set_strategies([Strategy.random(rng) for _ in range(20)])
        participants = list(range(20)) + engine.selfish_ids(4)
        stats = TournamentStats()
        engine.run_tournament(participants, 12, oracle, stats, None, None)
        return (
            stats.to_dict(),
            engine.fitness().tolist(),
            engine.payoff_matrix().tolist(),
            oracle.rng.bit_generator.state,
        )

    def test_trio_bit_identical_under_exact_policy(self):
        results = {
            name: self._run(name, "exact") for name in BIT_IDENTICAL_ENGINES
        }
        reference = results[BIT_IDENTICAL_ENGINES[0]]
        for name in BIT_IDENTICAL_ENGINES[1:]:
            assert results[name] == reference, (
                f"{name} diverged from {BIT_IDENTICAL_ENGINES[0]}"
                " under --route-cache exact"
            )

    def test_pinned_seed_trajectory_is_reproducible(self):
        """Same seeds, two runs: the exact policy is fully deterministic."""
        assert self._run("fast", "exact") == self._run("fast", "exact")


class TestSpeculationMachinery:
    """The statistical contract is only meaningful if speculation actually
    happens and its exact invariants hold."""

    def _run(self, hop_dist, seed, rounds=25, n_pop=20, n_csn=4):
        rng = np.random.default_rng(97)
        engine = make_engine("turbo", n_pop, n_csn)
        engine.set_strategies([Strategy.random(rng) for _ in range(n_pop)])
        participants = list(range(n_pop)) + engine.selfish_ids(n_csn)
        oracle = RandomPathOracle(np.random.default_rng(seed), hop_dist)
        stats = TournamentStats()
        engine.run_tournament(participants, rounds, oracle, stats, None, None)
        return engine, stats

    @pytest.mark.parametrize("hop_dist", [SHORTER_PATHS, LONGER_PATHS])
    def test_conflict_replay_is_exercised(self, hop_dist):
        engine, stats = self._run(hop_dist, seed=5)
        total = stats.nn_originated + stats.csn_originated
        assert engine._replayed_games > 0, "no game ever conflicted"
        assert engine._replayed_games < total, "everything replayed"

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_invariants_survive_speculation(self, seed):
        engine, stats = self._run(SHORTER_PATHS, seed)
        ps, pf = engine.ps, engine.pf
        assert (ps >= 0).all() and (pf >= 0).all()
        assert (pf <= ps).all()
        assert np.array_equal(engine.known, (ps > 0).sum(axis=1))
        assert np.array_equal(engine.pf_sum, pf.sum(axis=1))
        total = stats.nn_originated + stats.csn_originated
        assert total == 25 * 24  # rounds * participants: conservation
        assert int(engine.n_sent.sum()) == total
        # every request was answered by exactly one accept or reject
        answered = (
            stats.requests_from_nn.total + stats.requests_from_csn.total
        )
        assert answered == int(engine.n_fwd.sum() + engine.n_disc.sum()) + (
            # CSN decisions are counted in stats but not in the (dead)
            # CSN payoff accumulators
            stats.requests_from_nn.rejected_by_csn
            + stats.requests_from_csn.rejected_by_csn
        )

    def test_turbo_not_bit_identical_but_same_scale(self):
        """Documents the contract boundary: turbo diverges from the trio's
        trajectories (different draw stream) while landing on the same
        outcome scale."""
        rng = np.random.default_rng(11)
        strategies = [Strategy.random(rng) for _ in range(20)]
        outcomes = {}
        for name in ("fast", "turbo"):
            engine = make_engine(name, 20, 4)
            engine.set_strategies(strategies)
            participants = list(range(20)) + engine.selfish_ids(4)
            oracle = RandomPathOracle(np.random.default_rng(3), SHORTER_PATHS)
            stats = TournamentStats()
            engine.run_tournament(participants, 30, oracle, stats, None, None)
            outcomes[name] = stats.to_dict()
        assert outcomes["fast"] != outcomes["turbo"]  # trajectories diverge
        coop_fast = outcomes["fast"]["nn_delivered"]
        coop_turbo = outcomes["turbo"]["nn_delivered"]
        assert coop_fast > 0 and coop_turbo > 0
        # same scale: within a factor of 2 on a 30-round tournament
        assert 0.5 <= coop_turbo / coop_fast <= 2.0

"""Unit and property tests for GA variation operators (§5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.operators import mutate, one_point_crossover

genomes = st.lists(st.integers(0, 1), min_size=2, max_size=20).map(tuple)
seeds = st.integers(0, 2**32 - 1)


class TestCrossover:
    def test_children_have_parent_material(self, rng):
        a, b = (0,) * 8, (1,) * 8
        c1, c2 = one_point_crossover(a, b, rng)
        assert 0 < sum(c1) < 8  # cut in 1..7 guarantees a mix
        assert sum(c1) + sum(c2) == 8

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            one_point_crossover((0, 1), (0, 1, 1), rng)

    def test_too_short_rejected(self, rng):
        with pytest.raises(ValueError):
            one_point_crossover((0,), (1,), rng)

    def test_deterministic(self):
        a, b = (0, 0, 1, 1, 0), (1, 1, 0, 0, 1)
        r1 = one_point_crossover(a, b, np.random.default_rng(3))
        r2 = one_point_crossover(a, b, np.random.default_rng(3))
        assert r1 == r2

    def test_cut_point_coverage(self):
        """Over many draws every cut point 1..L-1 appears."""
        rng = np.random.default_rng(0)
        a, b = (0,) * 5, (1,) * 5
        cuts = set()
        for _ in range(200):
            c1, _ = one_point_crossover(a, b, rng)
            cuts.add(sum(1 for bit in c1 if bit == 0))
        assert cuts == {1, 2, 3, 4}

    @given(genomes, seeds)
    @settings(max_examples=50)
    def test_loci_come_from_parents(self, a, seed):
        b = tuple(1 - bit for bit in a)
        rng = np.random.default_rng(seed)
        c1, c2 = one_point_crossover(a, b, rng)
        for locus in range(len(a)):
            assert c1[locus] in (a[locus], b[locus])
            assert c2[locus] in (a[locus], b[locus])
            # one-point: children are complementary recombinations
            assert {c1[locus], c2[locus]} == {a[locus], b[locus]}

    @given(genomes, seeds)
    @settings(max_examples=50)
    def test_children_preserve_pairwise_multiset(self, a, seed):
        b = tuple(reversed(a))
        rng = np.random.default_rng(seed)
        c1, c2 = one_point_crossover(a, b, rng)
        assert sorted((*c1, *c2)) == sorted((*a, *b))


class TestMutation:
    def test_rate_zero_is_identity(self, rng):
        g = (0, 1, 0, 1, 1)
        assert mutate(g, 0.0, rng) == g

    def test_rate_one_flips_all(self, rng):
        g = (0, 1, 0, 1, 1)
        assert mutate(g, 1.0, rng) == (1, 0, 1, 0, 0)

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            mutate((0, 1), 1.5, rng)

    def test_empirical_flip_rate(self):
        rng = np.random.default_rng(1)
        flips = 0
        trials = 3000
        g = (0,) * 10
        for _ in range(trials):
            flips += sum(mutate(g, 0.05, rng))
        rate = flips / (trials * 10)
        assert 0.04 < rate < 0.06

    def test_fixed_stream_consumption(self):
        """Mutation consumes len(bits) uniforms regardless of flips."""
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        mutate((0,) * 8, 0.0, rng1)
        mutate((0,) * 8, 1.0, rng2)
        assert rng1.random() == rng2.random()

    @given(genomes, seeds, st.floats(0, 1, allow_nan=False))
    @settings(max_examples=50)
    def test_output_is_valid_genome(self, g, seed, rate):
        out = mutate(g, rate, np.random.default_rng(seed))
        assert len(out) == len(g)
        assert all(bit in (0, 1) for bit in out)

    @given(genomes, seeds)
    @settings(max_examples=50)
    def test_involution_at_rate_one(self, g, seed):
        rng = np.random.default_rng(seed)
        assert mutate(mutate(g, 1.0, rng), 1.0, rng) == g

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.node import AlwaysForwardPlayer, ConstantlySelfishPlayer, NormalPlayer
from repro.core.payoff import PayoffConfig
from repro.core.strategy import Strategy
from repro.paths.oracle import GameSetup, ScriptedPathOracle
from repro.reputation.activity import ActivityClassifier
from repro.reputation.trust import TrustTable


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def trust_table() -> TrustTable:
    return TrustTable()


@pytest.fixture
def activity() -> ActivityClassifier:
    return ActivityClassifier()


@pytest.fixture
def payoffs() -> PayoffConfig:
    return PayoffConfig()


def make_players(n_forwarders: int, n_selfish: int = 0, start_id: int = 0):
    """A player dict: ``n_forwarders`` altruists then ``n_selfish`` CSN."""
    players = {}
    pid = start_id
    for _ in range(n_forwarders):
        players[pid] = AlwaysForwardPlayer(pid)
        pid += 1
    for _ in range(n_selfish):
        players[pid] = ConstantlySelfishPlayer(pid)
        pid += 1
    return players


def normal_player(pid: int, strategy_text: str) -> NormalPlayer:
    """A normal player with a strategy given in paper display form."""
    return NormalPlayer(pid, Strategy.from_string(strategy_text))


def scripted_tournament_oracle(
    participants: list[int],
    rounds: int,
    make_setup,
) -> ScriptedPathOracle:
    """Build a scripted oracle covering a whole tournament.

    ``make_setup(round_no, source)`` must return a :class:`GameSetup`; the
    schedule follows the engines' iteration order (rounds outer, participants
    inner).
    """
    setups: list[GameSetup] = []
    for round_no in range(rounds):
        for source in participants:
            setups.append(make_setup(round_no, source))
    return ScriptedPathOracle(setups)


def seed_reputation(player, subject: int, forwarded: int, dropped: int) -> None:
    """Inject ``forwarded`` positive and ``dropped`` negative observations."""
    for _ in range(forwarded):
        player.reputation.record(subject, True)
    for _ in range(dropped):
        player.reputation.record(subject, False)

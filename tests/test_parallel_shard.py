"""Unit tests for the deterministic shard scheduler.

Two load-bearing properties: the plan is a pure function of
``(n_tasks, n_shards)``, and any shard count produces results identical to
the unsharded run (the shard never enters the seed tree).
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.parallel.shard import Shard, plan_shards, sharded_map


def square(x: int) -> int:
    return x * x


def boom(x: int) -> int:
    if x == 2:
        raise RuntimeError("shard 2 exploded")
    return x


def die_once_then_square(args: tuple[str, int]) -> int:
    """SIGKILL the worker on item 3's first attempt; succeed on the retry."""
    directory, x = args
    if x == 3:
        marker = Path(directory, "died")
        if not marker.exists():
            marker.touch()
            os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def slow_first_attempt(args: tuple[str, int]) -> int:
    """Item 0 straggles on its first attempt only, so a speculative
    duplicate (a fresh attempt that sees the marker) finishes instantly."""
    directory, x = args
    if x == 0:
        marker = Path(directory, "attempt0")
        try:
            marker.touch(exist_ok=False)
        except FileExistsError:
            return 100  # the backup: skip the sleep
        time.sleep(8.0)
        return 100
    time.sleep(0.05)
    return x


class TestPlanShards:
    def test_balanced_contiguous(self):
        plan = plan_shards(10, 4)
        assert [s.task_indices for s in plan] == [
            (0, 1, 2),
            (3, 4, 5),
            (6, 7),
            (8, 9),
        ]
        assert [s.index for s in plan] == [0, 1, 2, 3]

    def test_covers_every_task_exactly_once(self):
        for n_tasks in range(0, 13):
            for n_shards in range(1, 9):
                plan = plan_shards(n_tasks, n_shards)
                flat = [i for s in plan for i in s.task_indices]
                assert flat == list(range(n_tasks))

    def test_never_produces_empty_shards(self):
        plan = plan_shards(3, 8)
        assert [s.task_indices for s in plan] == [(0,), (1,), (2,)]
        assert plan_shards(0, 3) == []

    def test_sizes_differ_by_at_most_one(self):
        sizes = [len(s) for s in plan_shards(11, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self):
        assert plan_shards(60, 7) == plan_shards(60, 7)

    def test_shard_dataclass(self):
        shard = Shard(index=1, task_indices=(4, 5))
        assert len(shard) == 2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            plan_shards(-1, 2)
        with pytest.raises(ValueError):
            plan_shards(4, 0)


class TestShardedMap:
    def test_empty(self):
        assert sharded_map(square, []) == []

    def test_serial_path(self):
        assert sharded_map(square, [1, 2, 3], processes=1) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        out = sharded_map(square, list(range(12)), processes=2)
        assert out == [x * x for x in range(12)]

    def test_exception_propagates(self):
        with pytest.raises(RuntimeError, match="shard 2"):
            sharded_map(boom, [1, 2, 3], processes=2)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sharded_map(square, [1], processes=0)
        with pytest.raises(ValueError):
            sharded_map(square, [1, 2], processes=2, max_redispatch=-1)
        with pytest.raises(ValueError):
            sharded_map(square, [1, 2], processes=2, straggler_factor=1.0)

    def test_progress_callback(self):
        calls = []
        sharded_map(
            square,
            [1, 2, 3, 4],
            processes=2,
            progress=lambda d, t: calls.append((d, t)),
        )
        assert len(calls) == 4
        assert calls[-1] == (4, 4)

    def test_worker_death_propagates_without_redispatch(self, tmp_path):
        from concurrent.futures.process import BrokenProcessPool

        items = [(str(tmp_path), x) for x in range(6)]
        # speculation off: a straggler duplicate of the dying shard could
        # otherwise rescue the run before the broken pool surfaces
        with pytest.raises(BrokenProcessPool):
            sharded_map(
                die_once_then_square,
                items,
                processes=2,
                max_redispatch=0,
                straggler_factor=None,
            )

    def test_worker_death_redispatch_recovers(self, tmp_path):
        items = [(str(tmp_path), x) for x in range(6)]
        out = sharded_map(
            die_once_then_square, items, processes=2, max_redispatch=1
        )
        assert out == [x * x for x in range(6)]

    def test_straggler_speculation_wins(self, tmp_path):
        items = [(str(tmp_path), x) for x in range(4)]
        start = time.perf_counter()
        out = sharded_map(
            slow_first_attempt, items, processes=2, straggler_factor=2.0
        )
        elapsed = time.perf_counter() - start
        assert out == [100, 1, 2, 3]
        # the 8s first attempt lost to the speculative duplicate
        assert elapsed < 6.0
        assert (tmp_path / "attempt0").exists()

    def test_speculation_disabled(self):
        out = sharded_map(
            square, list(range(6)), processes=2, straggler_factor=None
        )
        assert out == [x * x for x in range(6)]


class TestShardInvariance:
    CONFIG = ExperimentConfig.for_case(
        "case1", scale="smoke", replications=5, generations=3
    )

    def test_any_shard_count_matches_unsharded(self):
        base = run_experiment(self.CONFIG, processes=2)
        for shards in (1, 2, 4, 8):
            sharded = run_experiment(self.CONFIG, processes=2, shards=shards)
            assert sharded.to_dict() == base.to_dict(), f"shards={shards}"

    def test_sharded_with_checkpoints_resumes(self, tmp_path):
        control = run_experiment(self.CONFIG, processes=2)
        first = run_experiment(
            self.CONFIG, processes=2, shards=2, checkpoint_dir=tmp_path
        )
        resumed = run_experiment(
            self.CONFIG, processes=2, shards=2, checkpoint_dir=tmp_path
        )
        assert first.replications == control.replications
        assert resumed.replications == control.replications
        for rep in resumed.replications:
            assert rep.checkpoint["resumed_from_generation"] is not None

    def test_shards_validated(self):
        with pytest.raises(ValueError):
            run_experiment(self.CONFIG, shards=0)

    def test_sharded_telemetry_folds_to_same_totals(self):
        from repro.telemetry.config import TelemetryConfig

        cfg = self.CONFIG.with_(telemetry=TelemetryConfig(enabled=True))
        plain = run_experiment(cfg, processes=2)
        sharded = run_experiment(cfg, processes=2, shards=2)
        pc = plain.telemetry["metrics"]["counters"]
        sc = sharded.telemetry["metrics"]["counters"]
        # engine/oracle counters must agree exactly; only the scheduler's own
        # shape (shard.* bookkeeping, pool task count) may differ
        engine_keys = {
            k
            for k in set(pc) | set(sc)
            if not k.startswith(("shard.", "parallel."))
        }
        assert engine_keys, "expected engine-level counters to compare"
        for key in engine_keys:
            assert pc.get(key) == sc.get(key), key
        assert sc["shard.runs"] == 2
        assert sc["shard.replications"] == cfg.replications

"""The zero-overhead-when-disabled contract, enforced.

Instrumented code may touch the telemetry runtime O(1) times per
*tournament seam* (one ``get_telemetry()`` + one ``enabled`` read), never
per round or per game, and a disabled run must allocate nothing from the
telemetry package.  These tests install a counting recorder as the
process-global singleton and run real engines against it; the wall-clock
side of the same contract is gated by
``benchmarks/bench_telemetry_overhead.py`` against the perf ledger.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.strategy import Strategy
from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import run_replication
from repro.game.stats import TournamentStats
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.sim import ENGINES, make_engine
from repro.telemetry.runtime import _NULL_SPAN, get_telemetry

N_NORMAL, N_CSN = 10, 2


class CountingRecorder:
    """A disabled-recorder stand-in that counts every runtime touch."""

    def __init__(self) -> None:
        self.enabled_reads = 0
        self.recording_calls = 0

    @property
    def enabled(self) -> bool:
        self.enabled_reads += 1
        return False

    def span(self, name):
        self.recording_calls += 1
        return _NULL_SPAN

    def count(self, name, n=1):
        self.recording_calls += 1

    def set_gauge(self, name, value):
        self.recording_calls += 1

    def observe(self, name, value, n=1):
        self.recording_calls += 1

    def timer_add(self, name, seconds):
        self.recording_calls += 1

    def event(self, name, **fields):
        self.recording_calls += 1


@pytest.fixture()
def recorder(monkeypatch) -> CountingRecorder:
    from repro.telemetry import runtime

    counting = CountingRecorder()
    monkeypatch.setattr(runtime, "_active", counting)
    return counting


def run_tournament(engine_name: str, rounds: int) -> None:
    rng = np.random.default_rng(0)
    engine = make_engine(engine_name, N_NORMAL, N_CSN)
    engine.set_strategies([Strategy.random(rng) for _ in range(N_NORMAL)])
    participants = list(range(N_NORMAL)) + engine.selfish_ids(N_CSN)
    oracle = RandomPathOracle(np.random.default_rng(1), SHORTER_PATHS)
    engine.run_tournament(participants, rounds, oracle, TournamentStats(), None, None)


class TestSeamIsPerTournament:
    @pytest.mark.parametrize("engine_name", sorted(ENGINES))
    def test_touch_count_independent_of_rounds(self, engine_name, recorder):
        run_tournament(engine_name, rounds=4)
        reads_small = recorder.enabled_reads
        run_tournament(engine_name, rounds=24)
        reads_large = recorder.enabled_reads - reads_small
        assert reads_small == reads_large, (
            f"{engine_name}: telemetry touches scale with rounds"
            f" ({reads_small} at 4 rounds vs {reads_large} at 24)"
        )
        # one get_telemetry()/enabled read per tournament seam
        assert reads_small <= 2
        assert recorder.recording_calls == 0

    def test_disabled_replication_touches_scale_with_seams_only(self, recorder):
        """A whole disabled replication touches the runtime per
        generation/tournament/GA-step seam, never per game."""
        config = ExperimentConfig.for_case("case1", scale="smoke")
        run_replication(config, 0)
        seams = 0
        for _ in range(config.generations):
            seams += 1  # evaluate_generation
            seams += len(config.case.environments) * (config.case.max_selfish or 1)
        seams += config.generations  # one GA step (+ final skipped) margin
        games = (
            config.generations * config.sim.rounds * 2
        )  # far below actual game count
        assert recorder.recording_calls == 0
        assert recorder.enabled_reads <= 3 * seams
        assert recorder.enabled_reads < games


class TestNoAllocations:
    def test_disabled_tournament_allocates_nothing_from_telemetry(self):
        assert get_telemetry().enabled is False
        run_tournament("fast", rounds=4)  # warm caches/imports outside the trace
        tracemalloc.start()
        try:
            run_tournament("fast", rounds=12)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        offenders = [
            stat
            for stat in snapshot.statistics("filename")
            if "telemetry" in stat.traceback[0].filename
        ]
        assert offenders == [], (
            "disabled run allocated from the telemetry package: "
            + ", ".join(str(stat) for stat in offenders)
        )

    def test_null_span_is_singleton(self):
        tel = get_telemetry()
        assert tel.span("a") is tel.span("b") is _NULL_SPAN

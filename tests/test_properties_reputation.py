"""Seeded property-based tests for reputation-state invariants, across
random game traces on **all** engines (bit-identical trio + turbo).

The trio's correctness is pinned trajectory-by-trajectory in
``test_engine_equivalence.py``; the turbo engine's only in distribution.
What every engine must guarantee *exactly*, on any trace, are the
reputation-accounting invariants this file drives with hypothesis:

* counters are non-negative and ``pf <= ps`` cellwise (a node cannot have
  forwarded more packets than it was observed handling);
* the O(1) activity aggregates stay consistent with the matrices:
  ``known[u] == #{j: ps[u][j] > 0}`` and ``pf_sum[u] == sum_j pf[u][j]``;
* counters are monotone non-decreasing across tournaments (watchdog
  evidence is never forgotten within a generation);
* the second-hand exchange only adds evidence — senders' rows are
  untouched, receivers' counters never decrease, and CORE-style
  positive-only gossip never worsens any observed forwarding rate.

Runs are seeded through hypothesis' deterministic profile
(``derandomize=True``), so CI failures reproduce locally from the printed
example instead of flaking.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategy import Strategy
from repro.game.stats import TournamentStats
from repro.paths.distributions import LONGER_PATHS, SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.reputation.exchange import ExchangeConfig, exchange_reputation_flat
from repro.sim import ENGINES, make_engine

ENGINE_NAMES = sorted(ENGINES)

scenario = st.fixed_dictionaries(
    {
        "n_pop": st.integers(8, 18),
        "n_csn": st.integers(0, 4),
        "rounds": st.integers(1, 7),
        "seed": st.integers(0, 2**31 - 1),
        "longer": st.booleans(),
    }
)

exchange_params = st.fixed_dictionaries(
    {
        "interval": st.integers(1, 5),
        "fanout": st.integers(0, 3),
        "weight": st.sampled_from([0.25, 0.5, 1.0]),
        "positive_only": st.booleans(),
    }
)

SETTINGS = settings(max_examples=12, deadline=None, derandomize=True)


def build(engine_name, params):
    rng = np.random.default_rng(params["seed"])
    engine = make_engine(engine_name, params["n_pop"], params["n_csn"])
    engine.set_strategies(
        [Strategy.random(rng) for _ in range(params["n_pop"])]
    )
    hop_dist = LONGER_PATHS if params["longer"] else SHORTER_PATHS
    oracle = RandomPathOracle(rng, hop_dist)
    participants = list(range(params["n_pop"])) + engine.selfish_ids(
        params["n_csn"]
    )
    return engine, oracle, participants


def reputation_state(engine):
    matrix = engine.payoff_matrix()
    return matrix[:, :, 0], matrix[:, :, 1]


def aggregates(engine) -> tuple[np.ndarray, np.ndarray]:
    """(known, pf_sum) in a layout shared by all engines."""
    if hasattr(engine, "known"):
        return (
            np.asarray(engine.known, dtype=np.int64),
            np.asarray(engine.pf_sum, dtype=np.int64),
        )
    # the reference engine keeps per-player tables instead of flat vectors
    m = engine.n_population + engine.max_selfish
    known = np.zeros(m, dtype=np.int64)
    pf_sum = np.zeros(m, dtype=np.int64)
    for pid in range(m):
        table = engine.player(pid).reputation
        known[pid] = table.n_known
        pf_sum[pid] = table.pf_total
    return known, pf_sum


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
class TestReputationInvariants:
    @SETTINGS
    @given(params=scenario)
    def test_counters_sane_and_aggregates_consistent(self, engine_name, params):
        engine, oracle, participants = build(engine_name, params)
        stats = TournamentStats()
        engine.run_tournament(
            participants, params["rounds"], oracle, stats, None, None
        )
        ps, pf = reputation_state(engine)
        assert (ps >= 0).all() and (pf >= 0).all()
        assert (pf <= ps).all(), "forwarded counts exceed observations"
        known, pf_sum = aggregates(engine)
        assert np.array_equal(known, (ps > 0).sum(axis=1))
        assert np.array_equal(pf_sum, pf.sum(axis=1))
        # nobody observes themselves
        assert (np.diagonal(ps) == 0).all()

    @SETTINGS
    @given(params=scenario)
    def test_counters_monotone_across_tournaments(self, engine_name, params):
        engine, oracle, participants = build(engine_name, params)
        engine.run_tournament(
            participants, params["rounds"], oracle, TournamentStats(), None, None
        )
        ps1, pf1 = reputation_state(engine)
        engine.run_tournament(
            participants, params["rounds"], oracle, TournamentStats(), None, None
        )
        ps2, pf2 = reputation_state(engine)
        assert (ps2 >= ps1).all(), "ps decreased between tournaments"
        assert (pf2 >= pf1).all(), "pf decreased between tournaments"
        engine.reset_generation()
        ps3, pf3 = reputation_state(engine)
        assert not ps3.any() and not pf3.any()


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
class TestExchangeInvariants:
    @SETTINGS
    @given(params=scenario, xparams=exchange_params)
    def test_exchange_only_adds_evidence(self, engine_name, params, xparams):
        engine, oracle, participants = build(engine_name, params)
        config = ExchangeConfig(enabled=True, **xparams)
        rng = np.random.default_rng(params["seed"] + 1)
        engine.run_tournament(
            participants, params["rounds"], oracle, TournamentStats(), None, None
        )
        ps1, pf1 = reputation_state(engine)
        rate1 = np.divide(
            pf1, ps1, out=np.zeros(ps1.shape), where=ps1 > 0
        )
        engine.run_tournament(
            participants, params["rounds"], oracle, TournamentStats(), config, rng
        )
        ps2, pf2 = reputation_state(engine)
        # gossip (and play) only ever adds observations
        assert (ps2 >= ps1).all() and (pf2 >= pf1).all()
        assert (pf2 <= ps2).all()
        known, pf_sum = aggregates(engine)
        assert np.array_equal(known, (ps2 > 0).sum(axis=1))
        assert np.array_equal(pf_sum, pf2.sum(axis=1))


class TestFlatExchangeConservation:
    """The flat gossip kernel in isolation: exact conservation properties on
    arbitrary reputation states (no game noise in the way)."""

    state = st.fixed_dictionaries(
        {
            "m": st.integers(4, 10),
            "seed": st.integers(0, 2**31 - 1),
            "density": st.floats(0.1, 0.9),
        }
    )

    @staticmethod
    def random_state(m, seed, density):
        rng = np.random.default_rng(seed)
        ps = (rng.random((m, m)) < density) * rng.integers(1, 20, (m, m))
        np.fill_diagonal(ps, 0)
        pf = rng.integers(0, 20, (m, m)) % (ps + 1)  # pf <= ps
        known = (ps > 0).sum(axis=1)
        pf_sum = pf.sum(axis=1)
        return (
            [row.tolist() for row in ps],
            [row.tolist() for row in pf],
            known.tolist(),
            pf_sum.tolist(),
        )

    @SETTINGS
    @given(params=state, xparams=exchange_params)
    def test_gossip_conserves_and_never_worsens(self, params, xparams):
        ps, pf, known, pf_sum = self.random_state(
            params["m"], params["seed"], params["density"]
        )
        before_ps = [row.copy() for row in ps]
        before_pf = [row.copy() for row in pf]
        config = ExchangeConfig(enabled=True, **xparams)
        rng = np.random.default_rng(params["seed"] + 7)
        participants = list(range(params["m"]))
        messages = exchange_reputation_flat(
            ps, pf, known, pf_sum, participants, config, rng
        )
        a_ps, a_pf = np.asarray(ps), np.asarray(pf)
        b_ps, b_pf = np.asarray(before_ps), np.asarray(before_pf)
        # evidence is only ever added, and stays internally consistent
        assert (a_ps >= b_ps).all() and (a_pf >= b_pf).all()
        assert (a_pf <= a_ps).all()
        assert known == ((a_ps > 0).sum(axis=1)).tolist()
        assert pf_sum == (a_pf.sum(axis=1)).tolist()
        if config.fanout == 0:
            assert messages == 0
            assert (a_ps == b_ps).all() and (a_pf == b_pf).all()
        if config.positive_only:
            # CORE's rule: a gossip message can never worsen a subject's
            # observed forwarding rate
            old_rate = np.divide(
                b_pf, b_ps, out=np.zeros(b_ps.shape), where=b_ps > 0
            )
            new_rate = np.divide(
                a_pf, a_ps, out=np.zeros(a_ps.shape), where=a_ps > 0
            )
            changed = a_ps != b_ps
            assert (
                new_rate[changed] >= old_rate[changed] - 1e-12
            ).all(), "positive-only gossip lowered a forwarding rate"

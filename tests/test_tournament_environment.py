"""Unit tests for tournament environments (Table 1)."""

from __future__ import annotations

import pytest

from repro.tournament.environment import TournamentEnvironment


class TestEnvironment:
    def test_n_normal(self):
        env = TournamentEnvironment("TEx", 50, 10)
        assert env.n_normal == 40
        assert env.selfish_fraction == 0.2

    def test_csn_free(self):
        env = TournamentEnvironment("TE1", 50, 0)
        assert env.n_normal == 50
        assert env.selfish_fraction == 0.0

    def test_rejects_all_selfish(self):
        with pytest.raises(ValueError):
            TournamentEnvironment("bad", 50, 50)

    def test_rejects_negative_selfish(self):
        with pytest.raises(ValueError):
            TournamentEnvironment("bad", 50, -1)

    def test_rejects_tiny_tournament(self):
        with pytest.raises(ValueError):
            TournamentEnvironment("bad", 2, 0)

    def test_str(self):
        assert "CSN=10" in str(TournamentEnvironment("TE2", 50, 10))

    def test_frozen(self):
        env = TournamentEnvironment("TE1", 50, 0)
        with pytest.raises(Exception):
            env.n_selfish = 5  # type: ignore[misc]

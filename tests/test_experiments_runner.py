"""Unit tests for the experiment runner, including failure injection."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import _task, run_experiment


def smoke(**overrides) -> ExperimentConfig:
    return ExperimentConfig.for_case("case1", scale="smoke", **overrides)


class TestRunExperiment:
    def test_replication_count(self):
        result = run_experiment(smoke(replications=3), processes=1)
        assert len(result.replications) == 3
        assert [r.replication for r in result.replications] == [0, 1, 2]

    def test_config_summary_attached(self):
        result = run_experiment(smoke(), processes=1)
        assert result.config["case"] == "case1"
        assert result.config["engine"] == "fast"

    def test_progress_called_per_replication(self):
        calls = []
        run_experiment(
            smoke(replications=2),
            processes=1,
            progress=lambda d, t: calls.append((d, t)),
        )
        assert calls == [(1, 2), (2, 2)]

    def test_task_wrapper_is_picklable(self):
        import pickle

        blob = pickle.dumps((_task, (smoke(), 0, None, True)))
        fn, args = pickle.loads(blob)
        result = fn(args)
        assert result.replication == 0


class TestFailureInjection:
    def test_invalid_engine_fails_before_running(self):
        with pytest.raises(ValueError):
            smoke(engine="quantum")

    def test_worker_exception_propagates(self, monkeypatch):
        """A crash inside a replication surfaces, never a silent partial result."""
        import repro.experiments.runner as runner_mod

        def explode(args):
            raise RuntimeError("injected replication failure")

        monkeypatch.setattr(runner_mod, "_task", explode)
        with pytest.raises(RuntimeError, match="injected"):
            runner_mod.run_experiment(smoke(replications=2), processes=1)

    def test_population_too_small_for_case(self):
        from repro.config.parameters import GAConfig
        from repro.experiments.cases import get_case

        with pytest.raises(ValueError, match="population"):
            ExperimentConfig(
                case=get_case("case3"),
                ga=GAConfig(population_size=30),  # TE1 needs 50 normals
            )

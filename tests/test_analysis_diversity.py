"""Unit and property tests for population-diversity metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.diversity import (
    genotype_entropy,
    mean_pairwise_hamming,
    per_locus_entropy,
    unique_fraction,
)
from repro.core.strategy import STRATEGY_LENGTH, Strategy

ALL_F = Strategy.all_forward().to_int()
ALL_D = Strategy.all_drop().to_int()

populations = st.lists(st.integers(0, 2**13 - 1), min_size=0, max_size=40)


class TestMeanPairwiseHamming:
    def test_identical_population_zero(self):
        assert mean_pairwise_hamming([ALL_F] * 10) == 0.0

    def test_two_complements(self):
        assert mean_pairwise_hamming([ALL_F, ALL_D]) == STRATEGY_LENGTH

    def test_half_and_half(self):
        pop = [ALL_F] * 5 + [ALL_D] * 5
        # 25 differing pairs of distance 13 over 45 pairs
        assert mean_pairwise_hamming(pop) == pytest.approx(13 * 25 / 45)

    def test_small_populations(self):
        assert mean_pairwise_hamming([]) == 0.0
        assert mean_pairwise_hamming([ALL_F]) == 0.0

    @given(populations)
    @settings(max_examples=30)
    def test_matches_naive_computation(self, pop):
        if len(pop) < 2:
            return
        from repro.utils.bitstring import hamming_distance

        bits = [Strategy.from_int(p).bits for p in pop]
        total = sum(
            hamming_distance(bits[i], bits[j])
            for i in range(len(pop))
            for j in range(i + 1, len(pop))
        )
        expected = total / (len(pop) * (len(pop) - 1) / 2)
        assert mean_pairwise_hamming(pop) == pytest.approx(expected)

    @given(populations)
    @settings(max_examples=30)
    def test_bounds(self, pop):
        d = mean_pairwise_hamming(pop)
        assert 0.0 <= d <= STRATEGY_LENGTH


class TestPerLocusEntropy:
    def test_uniform_locus_has_entropy_one(self):
        pop = [ALL_F, ALL_D]
        assert np.allclose(per_locus_entropy(pop), 1.0)

    def test_fixed_locus_has_entropy_zero(self):
        assert np.allclose(per_locus_entropy([ALL_F] * 4), 0.0)

    def test_empty(self):
        assert per_locus_entropy([]).shape == (STRATEGY_LENGTH,)

    @given(populations)
    @settings(max_examples=30)
    def test_bounds(self, pop):
        e = per_locus_entropy(pop)
        assert ((0.0 <= e) & (e <= 1.0 + 1e-12)).all()


class TestGenotypeMetrics:
    def test_unique_fraction(self):
        assert unique_fraction([ALL_F, ALL_F, ALL_D, 5]) == 0.75
        assert unique_fraction([]) == 0.0

    def test_genotype_entropy_uniform(self):
        pop = [1, 2, 3, 4]
        assert genotype_entropy(pop) == pytest.approx(2.0)

    def test_genotype_entropy_degenerate(self):
        assert genotype_entropy([7] * 12) == 0.0

    @given(populations)
    @settings(max_examples=30)
    def test_entropy_bounded_by_log_n(self, pop):
        if not pop:
            return
        assert genotype_entropy(pop) <= np.log2(len(pop)) + 1e-9


class TestEvolutionReducesDiversity:
    def test_selection_collapses_random_population(self):
        """Directional: strong selection reduces all diversity metrics."""
        rng = np.random.default_rng(0)
        from repro.config.parameters import GAConfig
        from repro.ga.evolution import GeneticAlgorithm

        ga = GeneticAlgorithm(
            GAConfig(population_size=40, mutation_rate=0.0, tournament_size=4)
        )
        pop_bits = ga.initial_population(13, rng)
        pop = [Strategy(b).to_int() for b in pop_bits]
        before = mean_pairwise_hamming(pop)
        fitness = np.array([sum(b) for b in pop_bits], dtype=float)
        for _ in range(15):
            pop_bits = ga.next_generation(pop_bits, fitness, rng)
            fitness = np.array([sum(b) for b in pop_bits], dtype=float)
        after = mean_pairwise_hamming([Strategy(b).to_int() for b in pop_bits])
        assert after < before

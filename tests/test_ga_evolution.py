"""Unit tests for the generational GA step, including a onemax convergence
check that validates the whole selection/crossover/mutation pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.parameters import GAConfig
from repro.ga.evolution import GeneticAlgorithm


def onemax(population) -> np.ndarray:
    return np.array([sum(bits) for bits in population], dtype=float)


class TestInitialPopulation:
    def test_size_and_length(self, rng):
        ga = GeneticAlgorithm(GAConfig(population_size=10))
        pop = ga.initial_population(13, rng)
        assert len(pop) == 10
        assert all(len(bits) == 13 for bits in pop)

    def test_random_content(self, rng):
        ga = GeneticAlgorithm(GAConfig(population_size=40))
        pop = ga.initial_population(13, rng)
        ones = sum(sum(bits) for bits in pop)
        assert 0.35 < ones / (40 * 13) < 0.65


class TestNextGeneration:
    def test_size_preserved(self, rng):
        ga = GeneticAlgorithm(GAConfig(population_size=12))
        pop = ga.initial_population(8, rng)
        nxt = ga.next_generation(pop, onemax(pop), rng)
        assert len(nxt) == 12
        assert all(len(bits) == 8 for bits in nxt)

    def test_population_size_enforced(self, rng):
        ga = GeneticAlgorithm(GAConfig(population_size=12))
        with pytest.raises(ValueError):
            ga.next_generation([(0, 1)] * 5, np.ones(5), rng)

    def test_fitness_length_enforced(self, rng):
        ga = GeneticAlgorithm(GAConfig(population_size=4))
        pop = ga.initial_population(5, rng)
        with pytest.raises(ValueError):
            ga.next_generation(pop, np.ones(3), rng)

    def test_no_crossover_no_mutation_clones_parents(self, rng):
        ga = GeneticAlgorithm(
            GAConfig(population_size=10, crossover_rate=0.0, mutation_rate=0.0)
        )
        pop = ga.initial_population(6, rng)
        nxt = ga.next_generation(pop, onemax(pop), rng)
        assert all(child in pop for child in nxt)

    def test_elitism_preserves_best(self, rng):
        ga = GeneticAlgorithm(
            GAConfig(population_size=8, elitism=2, mutation_rate=0.5)
        )
        pop = [(1, 1, 1, 1)] + [(0, 0, 0, 0)] * 7
        nxt = ga.next_generation(pop, onemax(pop), rng)
        assert nxt[0] == (1, 1, 1, 1)

    def test_deterministic_under_seed(self):
        ga = GeneticAlgorithm(GAConfig(population_size=10))
        pop = ga.initial_population(7, np.random.default_rng(1))
        a = ga.next_generation(pop, onemax(pop), np.random.default_rng(2))
        b = ga.next_generation(pop, onemax(pop), np.random.default_rng(2))
        assert a == b


class TestConvergence:
    @pytest.mark.parametrize("selection", ["tournament", "roulette"])
    def test_onemax_improves(self, selection):
        """Mean onemax fitness rises substantially within 30 generations."""
        rng = np.random.default_rng(11)
        ga = GeneticAlgorithm(
            GAConfig(
                population_size=40,
                selection=selection,
                mutation_rate=0.01,
            )
        )
        pop = ga.initial_population(20, rng)
        start = onemax(pop).mean()
        for _ in range(30):
            pop = ga.next_generation(pop, onemax(pop), rng)
        end = onemax(pop).mean()
        assert end > start + 4.0

    def test_tournament_reaches_near_optimum(self):
        rng = np.random.default_rng(13)
        ga = GeneticAlgorithm(GAConfig(population_size=60, mutation_rate=0.005))
        pop = ga.initial_population(16, rng)
        for _ in range(60):
            pop = ga.next_generation(pop, onemax(pop), rng)
        assert onemax(pop).max() >= 15

"""Unit tests for the generational GA step, including a onemax convergence
check that validates the whole selection/crossover/mutation pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.parameters import GAConfig
from repro.ga.evolution import GeneticAlgorithm


def onemax(population) -> np.ndarray:
    return np.array([sum(bits) for bits in population], dtype=float)


class TestInitialPopulation:
    def test_size_and_length(self, rng):
        ga = GeneticAlgorithm(GAConfig(population_size=10))
        pop = ga.initial_population(13, rng)
        assert len(pop) == 10
        assert all(len(bits) == 13 for bits in pop)

    def test_random_content(self, rng):
        ga = GeneticAlgorithm(GAConfig(population_size=40))
        pop = ga.initial_population(13, rng)
        ones = sum(sum(bits) for bits in pop)
        assert 0.35 < ones / (40 * 13) < 0.65


class TestNextGeneration:
    def test_size_preserved(self, rng):
        ga = GeneticAlgorithm(GAConfig(population_size=12))
        pop = ga.initial_population(8, rng)
        nxt = ga.next_generation(pop, onemax(pop), rng)
        assert len(nxt) == 12
        assert all(len(bits) == 8 for bits in nxt)

    def test_population_size_enforced(self, rng):
        ga = GeneticAlgorithm(GAConfig(population_size=12))
        with pytest.raises(ValueError):
            ga.next_generation([(0, 1)] * 5, np.ones(5), rng)

    def test_fitness_length_enforced(self, rng):
        ga = GeneticAlgorithm(GAConfig(population_size=4))
        pop = ga.initial_population(5, rng)
        with pytest.raises(ValueError):
            ga.next_generation(pop, np.ones(3), rng)

    def test_no_crossover_no_mutation_clones_parents(self, rng):
        ga = GeneticAlgorithm(
            GAConfig(population_size=10, crossover_rate=0.0, mutation_rate=0.0)
        )
        pop = ga.initial_population(6, rng)
        nxt = ga.next_generation(pop, onemax(pop), rng)
        assert all(child in pop for child in nxt)

    def test_elitism_preserves_best(self, rng):
        ga = GeneticAlgorithm(
            GAConfig(population_size=8, elitism=2, mutation_rate=0.5)
        )
        pop = [(1, 1, 1, 1)] + [(0, 0, 0, 0)] * 7
        nxt = ga.next_generation(pop, onemax(pop), rng)
        assert nxt[0] == (1, 1, 1, 1)

    def test_deterministic_under_seed(self):
        ga = GeneticAlgorithm(GAConfig(population_size=10))
        pop = ga.initial_population(7, np.random.default_rng(1))
        a = ga.next_generation(pop, onemax(pop), np.random.default_rng(2))
        b = ga.next_generation(pop, onemax(pop), np.random.default_rng(2))
        assert a == b

    def test_elitism_equal_to_population_is_a_pure_copy(self):
        """Boundary: the elite set is the whole next generation — the
        offspring loop never runs, so no rng is consumed (scalar and
        vectorized step alike)."""
        ga = GeneticAlgorithm(GAConfig(population_size=4, elitism=4))
        pop = [(1, 1, 0, 0), (1, 1, 1, 1), (0, 0, 0, 0), (1, 0, 0, 0)]
        fitness = onemax(pop)
        for step in (ga.next_generation, ga.next_generation_vectorized):
            rng = np.random.default_rng(23)
            probe = np.random.default_rng(23)
            nxt = step(pop, fitness, rng)
            assert nxt == [
                (1, 1, 1, 1),
                (1, 1, 0, 0),
                (1, 0, 0, 0),
                (0, 0, 0, 0),
            ]
            assert rng.integers(1 << 30) == probe.integers(1 << 30)

    def test_duck_typed_oversized_elitism_rejected(self, rng):
        """GAConfig validates its own elitism bound; a duck-typed config
        (ablation harnesses build these) must hit the step's explicit guard
        instead of silently growing the population."""
        from types import SimpleNamespace

        cfg = SimpleNamespace(
            population_size=4,
            elitism=6,
            selection="tournament",
            tournament_size=2,
            crossover_rate=0.9,
            mutation_rate=0.1,
        )
        ga = GeneticAlgorithm.__new__(GeneticAlgorithm)
        ga.config = cfg
        pop = [(0, 0, 0, 0)] * 4
        with pytest.raises(ValueError, match="oversized elite set"):
            ga.next_generation(pop, onemax(pop), rng)
        with pytest.raises(ValueError, match="oversized elite set"):
            ga.next_generation_vectorized(pop, onemax(pop), rng)


class TestConvergence:
    @pytest.mark.parametrize("selection", ["tournament", "roulette"])
    def test_onemax_improves(self, selection):
        """Mean onemax fitness rises substantially within 30 generations."""
        rng = np.random.default_rng(11)
        ga = GeneticAlgorithm(
            GAConfig(
                population_size=40,
                selection=selection,
                mutation_rate=0.01,
            )
        )
        pop = ga.initial_population(20, rng)
        start = onemax(pop).mean()
        for _ in range(30):
            pop = ga.next_generation(pop, onemax(pop), rng)
        end = onemax(pop).mean()
        assert end > start + 4.0

    def test_tournament_reaches_near_optimum(self):
        rng = np.random.default_rng(13)
        ga = GeneticAlgorithm(GAConfig(population_size=60, mutation_rate=0.005))
        pop = ga.initial_population(16, rng)
        for _ in range(60):
            pop = ga.next_generation(pop, onemax(pop), rng)
        assert onemax(pop).max() >= 15

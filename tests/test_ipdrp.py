"""Unit tests for the IPDRP baseline (paper ref [12])."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.parameters import GAConfig
from repro.ipdrp.evolution import evolve_ipdrp
from repro.ipdrp.game import PDPayoffs, play_random_pairing_tournament
from repro.ipdrp.strategy import IPDRP_STRATEGY_LENGTH, IpdrpStrategy


class TestStrategy:
    def test_length(self):
        assert IPDRP_STRATEGY_LENGTH == 5

    def test_first_move(self):
        assert IpdrpStrategy.always_cooperate().first_move()
        assert not IpdrpStrategy.always_defect().first_move()

    def test_memory_indexing(self):
        # bits: first, (C,C), (C,D), (D,C), (D,D)
        s = IpdrpStrategy((1, 1, 0, 0, 1))
        assert s.move(True, True) is True
        assert s.move(True, False) is False
        assert s.move(False, True) is False
        assert s.move(False, False) is True

    def test_tft_like_reacts_to_opponent(self):
        tft = IpdrpStrategy.tit_for_tat_like()
        assert tft.move(True, True) and tft.move(False, True)
        assert not tft.move(True, False) and not tft.move(False, False)

    def test_string_roundtrip(self):
        s = IpdrpStrategy.from_string("10110")
        assert s.to_string() == "10110"

    def test_hashable(self):
        assert IpdrpStrategy((1, 0, 1, 0, 1)) == IpdrpStrategy((1, 0, 1, 0, 1))
        assert (
            len({IpdrpStrategy.always_cooperate(), IpdrpStrategy.always_cooperate()})
            == 1
        )


class TestPDPayoffs:
    def test_classic_values(self):
        p = PDPayoffs()
        assert p.payoff(True, True) == 3.0
        assert p.payoff(True, False) == 0.0
        assert p.payoff(False, True) == 5.0
        assert p.payoff(False, False) == 1.0

    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            PDPayoffs(temptation=1.0)

    def test_2r_constraint(self):
        with pytest.raises(ValueError, match="2R"):
            PDPayoffs(temptation=7.0, reward=3.0, punishment=1.0, sucker=0.0)


class TestTournament:
    def test_all_cooperators_earn_reward(self, rng):
        strategies = [IpdrpStrategy.always_cooperate()] * 10
        payoffs, coop = play_random_pairing_tournament(strategies, 20, rng)
        assert coop == 1.0
        assert np.allclose(payoffs, 3.0)

    def test_all_defectors_earn_punishment(self, rng):
        strategies = [IpdrpStrategy.always_defect()] * 10
        payoffs, coop = play_random_pairing_tournament(strategies, 20, rng)
        assert coop == 0.0
        assert np.allclose(payoffs, 1.0)

    def test_defector_exploits_cooperators(self, rng):
        strategies = [IpdrpStrategy.always_cooperate()] * 9 + [
            IpdrpStrategy.always_defect()
        ]
        payoffs, _ = play_random_pairing_tournament(strategies, 50, rng)
        assert payoffs[-1] > payoffs[:-1].mean()

    def test_odd_population_rejected(self, rng):
        with pytest.raises(ValueError):
            play_random_pairing_tournament([IpdrpStrategy.always_defect()] * 3, 5, rng)

    def test_deterministic(self):
        strategies = [
            IpdrpStrategy.random(np.random.default_rng(0)) for _ in range(8)
        ]
        a = play_random_pairing_tournament(strategies, 10, np.random.default_rng(1))
        b = play_random_pairing_tournament(strategies, 10, np.random.default_rng(1))
        assert np.array_equal(a[0], b[0]) and a[1] == b[1]


class TestEvolution:
    def test_history_shape(self):
        h = evolve_ipdrp(generations=4, rounds=20, seed=5)
        assert h.n_generations == 4
        assert len(h.mean_fitness) == 4
        assert len(h.final_population) == 50

    def test_defection_pressure(self):
        """Memory-one IPDRP under selection drifts toward defection —
        the well-known baseline result our model's reputation system exists
        to counter."""
        h = evolve_ipdrp(
            generations=25,
            rounds=50,
            ga_config=GAConfig(population_size=30, mutation_rate=0.01),
            seed=7,
        )
        assert h.cooperation[-1] < 0.35

    def test_custom_ga_config(self):
        h = evolve_ipdrp(
            generations=2,
            rounds=10,
            ga_config=GAConfig(population_size=10, selection="roulette"),
            seed=3,
        )
        assert len(h.final_population) == 10

    def test_bad_generations(self):
        with pytest.raises(ValueError):
            evolve_ipdrp(generations=0)

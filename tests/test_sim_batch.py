"""Unit tests specific to the batch engine (construction, guards, SoA state).

Cross-engine trajectory identity lives in ``test_engine_equivalence.py``;
here we pin the struct-of-arrays surface itself: canonical numpy state,
mirror synchronisation at tournament boundaries, plan fallbacks for oracles
without a batched draw, and the vectorized fitness expression.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategy import STRATEGY_LENGTH, Strategy
from repro.game.stats import TournamentStats
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import GameSetup, RandomPathOracle, ScriptedPathOracle
from repro.reputation.exchange import ExchangeConfig
from repro.reputation.trust import TrustTable
from repro.sim import make_engine
from repro.sim.batch import BatchEngine


class TestConstruction:
    def test_population_ids(self):
        engine = BatchEngine(8, 3)
        assert list(engine.population_ids) == list(range(8))

    def test_selfish_ids_follow_population_block(self):
        engine = BatchEngine(8, 3)
        assert engine.selfish_ids(2) == [8, 9]
        assert engine.selfish_ids(0) == []

    def test_selfish_overflow_rejected(self):
        with pytest.raises(ValueError):
            BatchEngine(8, 3).selfish_ids(4)

    def test_strategy_count_enforced(self):
        engine = BatchEngine(4, 0)
        with pytest.raises(ValueError):
            engine.set_strategies([Strategy.all_forward()])

    def test_requires_four_trust_levels(self):
        with pytest.raises(ValueError, match="4 trust levels"):
            BatchEngine(4, 0, trust_table=TrustTable(bounds=(0.5,)))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            BatchEngine(0, 1)
        with pytest.raises(ValueError):
            BatchEngine(4, -1)

    def test_factory_builds_batch(self):
        engine = make_engine("batch", 6, 2)
        assert isinstance(engine, BatchEngine)
        assert engine.name == "batch"


class TestStructOfArrays:
    def test_strategy_matrix_shape_and_dtype(self):
        engine = BatchEngine(5, 0)
        rng = np.random.default_rng(3)
        strategies = [Strategy.random(rng) for _ in range(5)]
        engine.set_strategies(strategies)
        assert engine.strategy_matrix.shape == (5, STRATEGY_LENGTH)
        assert engine.strategy_matrix.dtype == np.int8
        for pid, strategy in enumerate(strategies):
            assert tuple(engine.strategy_matrix[pid]) == strategy.bits

    def test_canonical_state_is_dense_numpy(self):
        engine = BatchEngine(6, 2)
        m = 8
        assert engine.ps.shape == engine.pf.shape == (m, m)
        assert engine.ps.dtype == engine.pf.dtype == np.int64
        assert engine.known.shape == engine.pf_sum.shape == (m,)
        assert engine.send_pay.dtype == np.float64

    def test_state_synchronised_after_tournament(self, rng):
        engine = BatchEngine(6, 0)
        engine.set_strategies([Strategy.all_forward()] * 6)
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        engine.run_tournament(list(range(6)), 5, oracle, TournamentStats())
        # watchdog observations landed in the canonical arrays
        assert int(engine.ps.sum()) > 0
        assert np.array_equal(engine.known, (engine.ps > 0).sum(axis=1))
        assert np.array_equal(engine.pf_sum, engine.pf.sum(axis=1))
        # all-forward population: every observation is a forward
        assert np.array_equal(engine.ps, engine.pf)

    def test_reset_generation_clears_state(self, rng):
        engine = BatchEngine(6, 0)
        engine.set_strategies([Strategy.all_forward()] * 6)
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        engine.run_tournament(list(range(6)), 3, oracle, TournamentStats())
        engine.reset_generation()
        assert int(engine.ps.sum()) == 0
        assert int(engine.n_sent.sum()) == 0
        assert engine.fitness().tolist() == [0.0] * 6

    def test_payoff_matrix_layout(self, rng):
        engine = BatchEngine(5, 1)
        engine.set_strategies([Strategy.all_forward()] * 5)
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        engine.run_tournament(list(range(5)) + [5], 4, oracle, TournamentStats())
        out = engine.payoff_matrix()
        assert out.shape == (6, 6, 2)
        assert np.array_equal(out[:, :, 0], engine.ps)
        assert np.array_equal(out[:, :, 1], engine.pf)


class TestGuards:
    def test_exchange_requires_rng(self, rng):
        engine = BatchEngine(6, 0)
        engine.set_strategies([Strategy.all_forward()] * 6)
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        with pytest.raises(ValueError, match="requires an rng"):
            engine.run_tournament(
                list(range(6)),
                2,
                oracle,
                TournamentStats(),
                ExchangeConfig(enabled=True),
                None,
            )

    def test_disabled_exchange_is_fine(self, rng):
        engine = BatchEngine(6, 0)
        engine.set_strategies([Strategy.all_forward()] * 6)
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        engine.run_tournament(
            list(range(6)), 2, oracle, TournamentStats(), ExchangeConfig(), None
        )

    def test_zero_rounds_rejected(self, rng):
        engine = BatchEngine(6, 0)
        engine.set_strategies([Strategy.all_forward()] * 6)
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        with pytest.raises(ValueError):
            engine.run_tournament(
                list(range(6)), 0, oracle, TournamentStats(), None, None
            )


class TestOracleFallback:
    """Oracles without ``draw_tournament`` are pre-drawn per game."""

    def test_scripted_oracle_consumed_in_order(self):
        participants = [0, 1, 2, 3]
        setups = []
        for _ in range(2):  # two rounds
            for source in participants:
                others = [p for p in participants if p != source]
                setups.append(
                    GameSetup(
                        source=source,
                        destination=others[0],
                        paths=((others[1],),),
                    )
                )
        oracle = ScriptedPathOracle(setups)
        engine = BatchEngine(4, 0)
        engine.set_strategies([Strategy.all_forward()] * 4)
        stats = TournamentStats()
        engine.run_tournament(participants, 2, oracle, stats, None, None)
        assert oracle.remaining == 0
        assert stats.nn_originated == 8
        assert stats.cooperation_level == 1.0

    def test_scripted_oracle_source_mismatch_caught(self):
        oracle = ScriptedPathOracle(
            [GameSetup(source=99, destination=1, paths=((2,),))]
        )
        engine = BatchEngine(4, 0)
        engine.set_strategies([Strategy.all_forward()] * 4)
        with pytest.raises(AssertionError, match="source"):
            engine.run_tournament([0, 1, 2, 3], 1, oracle, TournamentStats())


class TestFitness:
    def test_zero_events_is_zero_fitness(self):
        engine = BatchEngine(4, 0)
        assert engine.fitness().tolist() == [0.0] * 4

    def test_fitness_matches_scalar_formula(self, rng):
        engine = BatchEngine(8, 2)
        engine.set_strategies(
            [Strategy.random(np.random.default_rng(1)) for _ in range(8)]
        )
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        engine.run_tournament(
            list(range(8)) + [8, 9], 10, oracle, TournamentStats()
        )
        out = engine.fitness()
        for pid in range(8):
            events = int(
                engine.n_sent[pid] + engine.n_fwd[pid] + engine.n_disc[pid]
            )
            total = (
                float(engine.send_pay[pid])
                + float(engine.fwd_pay_acc[pid])
                + float(engine.disc_pay_acc[pid])
            )
            expected = 0.0 if events == 0 else total / events
            assert out[pid] == expected

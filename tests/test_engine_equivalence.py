"""Reference vs fast engine: bit-for-bit equivalence.

Both engines consume randomness exclusively through shared components (path
oracle, seating scheduler, GA), so under identical seeds they must produce
identical decisions, payoffs, reputation matrices, statistics, fitness and —
through a whole GA replication — identical evolved populations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategy import Strategy
from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import run_replication
from repro.game.stats import TournamentStats
from repro.paths.distributions import LONGER_PATHS, SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.sim.fast import FastEngine
from repro.sim.reference import ReferenceEngine
from repro.tournament.environment import TournamentEnvironment
from repro.tournament.evaluation import evaluate_generation


def build_pair(n_pop=16, max_csn=5, seed=77):
    rng = np.random.default_rng(seed)
    strategies = [Strategy.random(rng) for _ in range(n_pop)]
    engines = []
    for cls in (ReferenceEngine, FastEngine):
        engine = cls(n_pop, max_csn)
        engine.set_strategies(strategies)
        engines.append(engine)
    return engines


def run_engine(engine, participants, rounds, oracle_seed, hop_dist=SHORTER_PATHS):
    oracle = RandomPathOracle(np.random.default_rng(oracle_seed), hop_dist)
    stats = TournamentStats()
    engine.reset_generation()
    engine.run_tournament(participants, rounds, oracle, stats, None, None)
    return stats


class TestTournamentEquivalence:
    @pytest.mark.parametrize("oracle_seed", [0, 1, 2, 3])
    def test_stats_identical(self, oracle_seed):
        ref, fast = build_pair()
        participants = list(range(12)) + [16, 17, 18]  # 12 NN + 3 CSN
        s_ref = run_engine(ref, participants, 15, oracle_seed)
        s_fast = run_engine(fast, participants, 15, oracle_seed)
        assert s_ref.to_dict() == s_fast.to_dict()

    @pytest.mark.parametrize("hop_dist", [SHORTER_PATHS, LONGER_PATHS])
    def test_reputation_matrices_identical(self, hop_dist):
        ref, fast = build_pair()
        participants = list(range(10)) + [16, 17]
        run_engine(ref, participants, 12, 5, hop_dist)
        run_engine(fast, participants, 12, 5, hop_dist)
        assert np.array_equal(ref.payoff_matrix(), fast.payoff_matrix())

    def test_fitness_identical(self):
        ref, fast = build_pair()
        participants = list(range(14)) + [16]
        run_engine(ref, participants, 10, 9)
        run_engine(fast, participants, 10, 9)
        assert np.array_equal(ref.fitness(), fast.fitness())

    def test_payoff_components_identical(self):
        ref, fast = build_pair()
        participants = list(range(16))
        run_engine(ref, participants, 10, 11)
        run_engine(fast, participants, 10, 11)
        for pid in range(16):
            acc = ref.player(pid).payoffs
            assert acc.send_payoff == fast.send_pay[pid]
            assert acc.forward_payoff == fast.fwd_pay_acc[pid]
            assert acc.discard_payoff == fast.disc_pay_acc[pid]
            assert acc.n_sent == fast.n_sent[pid]
            assert acc.n_forwarded == fast.n_fwd[pid]
            assert acc.n_discarded == fast.n_disc[pid]


class TestGenerationEquivalence:
    def test_full_evaluation_identical(self):
        envs = [
            TournamentEnvironment("A", 10, 0),
            TournamentEnvironment("B", 10, 4),
        ]
        results = []
        for engine in build_pair():
            oracle = RandomPathOracle(np.random.default_rng(21), SHORTER_PATHS)
            res = evaluate_generation(
                engine,
                envs,
                rounds=8,
                plays_per_environment=1,
                oracle=oracle,
                rng=np.random.default_rng(22),
            )
            results.append(res)
        a, b = results
        assert np.array_equal(a.fitness, b.fitness)
        assert a.overall.to_dict() == b.overall.to_dict()
        for env in ("A", "B"):
            assert (
                a.per_environment[env].to_dict() == b.per_environment[env].to_dict()
            )


class TestReplicationEquivalence:
    @pytest.mark.parametrize("case", ["case1", "case3"])
    def test_whole_replication_identical(self, case):
        """The strongest check: an entire GA run (evaluation + evolution)."""
        base = ExperimentConfig.for_case(case, scale="smoke", seed=31)
        ref = run_replication(base.with_(engine="reference"), 0)
        fast = run_replication(base.with_(engine="fast"), 0)
        assert ref.history.to_dict() == fast.history.to_dict()
        assert ref.final_population == fast.final_population
        assert ref.final_overall.to_dict() == fast.final_overall.to_dict()
        for env in ref.final_per_env:
            assert (
                ref.final_per_env[env].to_dict()
                == fast.final_per_env[env].to_dict()
            )

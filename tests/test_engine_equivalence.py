"""Reference vs fast vs batch engine: bit-for-bit equivalence.

All engines consume randomness exclusively through shared components (path
oracle, seating scheduler, GA, exchange), so under identical seeds they must
produce identical decisions, payoffs, reputation matrices, statistics,
fitness and — through a whole GA replication — identical evolved populations.

The batch engine additionally pre-draws whole tournament/round schedules
(:func:`repro.paths.oracle.plan_games`); these tests pin that pre-drawing
never changes a trajectory, for every oracle kind and with the second-hand
exchange enabled (where gossip draws interleave with oracle draws on a
shared generator at round boundaries).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.strategy import Strategy
from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import run_replication
from repro.game.stats import TournamentStats
from repro.paths.distributions import LONGER_PATHS, SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.reputation.exchange import ExchangeConfig
from repro.sim import BIT_IDENTICAL_ENGINES, make_engine
from repro.tournament.environment import TournamentEnvironment
from repro.tournament.evaluation import evaluate_generation

# the turbo engine is deliberately absent: its contract is statistical
# equivalence (tests/test_engine_statistical.py), not bit-identity
ENGINE_NAMES = BIT_IDENTICAL_ENGINES  # ("reference", "fast", "batch")
ALT_ENGINES = ("fast", "batch")  # compared against the reference


def build_engines(n_pop=16, max_csn=5, seed=77, names=ENGINE_NAMES):
    rng = np.random.default_rng(seed)
    strategies = [Strategy.random(rng) for _ in range(n_pop)]
    engines = []
    for name in names:
        engine = make_engine(name, n_pop, max_csn)
        engine.set_strategies(strategies)
        engines.append(engine)
    return engines


def run_engine(
    engine,
    participants,
    rounds,
    oracle_seed,
    hop_dist=SHORTER_PATHS,
    exchange=None,
    shared_rng=False,
):
    oracle_rng = np.random.default_rng(oracle_seed)
    oracle = RandomPathOracle(oracle_rng, hop_dist)
    if exchange is None:
        rng = None
    elif shared_rng:
        rng = oracle_rng  # exchange and oracle draw from one stream
    else:
        rng = np.random.default_rng(oracle_seed + 1)
    stats = TournamentStats()
    engine.reset_generation()
    engine.run_tournament(participants, rounds, oracle, stats, exchange, rng)
    return stats


class TestTournamentEquivalence:
    @pytest.mark.parametrize("oracle_seed", [0, 1, 2, 3])
    def test_stats_identical(self, oracle_seed):
        ref, fast, batch = build_engines()
        participants = list(range(12)) + [16, 17, 18]  # 12 NN + 3 CSN
        s_ref = run_engine(ref, participants, 15, oracle_seed)
        s_fast = run_engine(fast, participants, 15, oracle_seed)
        s_batch = run_engine(batch, participants, 15, oracle_seed)
        assert s_ref.to_dict() == s_fast.to_dict()
        assert s_ref.to_dict() == s_batch.to_dict()

    @pytest.mark.parametrize("hop_dist", [SHORTER_PATHS, LONGER_PATHS])
    def test_reputation_matrices_identical(self, hop_dist):
        ref, fast, batch = build_engines()
        participants = list(range(10)) + [16, 17]
        for engine in (ref, fast, batch):
            run_engine(engine, participants, 12, 5, hop_dist)
        assert np.array_equal(ref.payoff_matrix(), fast.payoff_matrix())
        assert np.array_equal(ref.payoff_matrix(), batch.payoff_matrix())

    def test_fitness_identical(self):
        ref, fast, batch = build_engines()
        participants = list(range(14)) + [16]
        for engine in (ref, fast, batch):
            run_engine(engine, participants, 10, 9)
        assert np.array_equal(ref.fitness(), fast.fitness())
        assert np.array_equal(ref.fitness(), batch.fitness())

    def test_payoff_components_identical(self):
        ref, fast, batch = build_engines()
        participants = list(range(16))
        for engine in (ref, fast, batch):
            run_engine(engine, participants, 10, 11)
        for pid in range(16):
            acc = ref.player(pid).payoffs
            assert acc.send_payoff == fast.send_pay[pid] == batch.send_pay[pid]
            assert (
                acc.forward_payoff == fast.fwd_pay_acc[pid] == batch.fwd_pay_acc[pid]
            )
            assert (
                acc.discard_payoff
                == fast.disc_pay_acc[pid]
                == batch.disc_pay_acc[pid]
            )
            assert acc.n_sent == fast.n_sent[pid] == batch.n_sent[pid]
            assert acc.n_forwarded == fast.n_fwd[pid] == batch.n_fwd[pid]
            assert acc.n_discarded == fast.n_disc[pid] == batch.n_disc[pid]


class TestExchangeEquivalence:
    """The second-hand exchange runs identically on all three engines."""

    CONFIGS = [
        ExchangeConfig(enabled=True, interval=5, fanout=2, positive_only=True),
        ExchangeConfig(enabled=True, interval=3, fanout=3, positive_only=False),
        ExchangeConfig(
            enabled=True, interval=7, fanout=1, weight=0.9, positive_only=False
        ),
    ]

    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("shared_rng", [False, True])
    def test_exchange_identical(self, config, shared_rng):
        """Separate rngs, and the hard case: exchange and oracle sharing one
        generator, where pre-drawing past a gossip step would skew the
        stream."""
        ref, fast, batch = build_engines()
        participants = list(range(12)) + [16, 17, 18]
        results = [
            run_engine(
                engine,
                participants,
                20,
                5,
                exchange=config,
                shared_rng=shared_rng,
            )
            for engine in (ref, fast, batch)
        ]
        s_ref, s_fast, s_batch = results
        assert s_ref.to_dict() == s_fast.to_dict()
        assert s_ref.to_dict() == s_batch.to_dict()
        assert np.array_equal(ref.payoff_matrix(), fast.payoff_matrix())
        assert np.array_equal(ref.payoff_matrix(), batch.payoff_matrix())
        assert np.array_equal(ref.fitness(), fast.fitness())
        assert np.array_equal(ref.fitness(), batch.fitness())


class TestGenerationEquivalence:
    def test_full_evaluation_identical(self):
        envs = [
            TournamentEnvironment("A", 10, 0),
            TournamentEnvironment("B", 10, 4),
        ]
        results = []
        for engine in build_engines():
            oracle = RandomPathOracle(np.random.default_rng(21), SHORTER_PATHS)
            res = evaluate_generation(
                engine,
                envs,
                rounds=8,
                plays_per_environment=1,
                oracle=oracle,
                rng=np.random.default_rng(22),
            )
            results.append(res)
        a, b, c = results
        for other in (b, c):
            assert np.array_equal(a.fitness, other.fitness)
            assert a.overall.to_dict() == other.overall.to_dict()
            for env in ("A", "B"):
                assert (
                    a.per_environment[env].to_dict()
                    == other.per_environment[env].to_dict()
                )


class TestReplicationEquivalence:
    @pytest.mark.parametrize("case", ["case1", "case3"])
    @pytest.mark.parametrize("alt_engine", ALT_ENGINES)
    def test_whole_replication_identical(self, case, alt_engine):
        """The strongest check: an entire GA run (evaluation + evolution)."""
        base = ExperimentConfig.for_case(case, scale="smoke", seed=31)
        ref = run_replication(base.with_(engine="reference"), 0)
        alt = run_replication(base.with_(engine=alt_engine), 0)
        assert ref.history.to_dict() == alt.history.to_dict()
        assert ref.final_population == alt.final_population
        assert ref.final_overall.to_dict() == alt.final_overall.to_dict()
        for env in ref.final_per_env:
            assert (
                ref.final_per_env[env].to_dict() == alt.final_per_env[env].to_dict()
            )

    @pytest.mark.parametrize(
        "case", ["mobile_waypoint", "exchange_core", "exchange_full"]
    )
    def test_extension_replication_identical(self, case):
        """Extensions: mobile oracle (batch pre-draws via the generic
        fallback) and exchange regimes (per-round planning) stay
        bit-identical through a whole replication."""
        base = ExperimentConfig.for_case(case, scale="smoke", seed=13)
        ref = run_replication(base.with_(engine="reference"), 0)
        fast = run_replication(base.with_(engine="fast"), 0)
        batch = run_replication(base.with_(engine="batch"), 0)
        assert ref.history.to_dict() == fast.history.to_dict()
        assert ref.history.to_dict() == batch.history.to_dict()
        assert ref.final_population == fast.final_population
        assert ref.final_population == batch.final_population


class TestRandomizedSeedEquivalence:
    """Fresh-seed sweep: stream-identity must hold for *any* seed, not just
    the pinned lists above.

    Every run draws ``REPRO_EQUIV_RANDOM_SEEDS`` (default 3) new oracle
    seeds from OS entropy, so the bit-identity claim cannot quietly overfit
    to the fixed seeds used elsewhere in this file.  On failure the assert
    message carries the offending seed so the run can be reproduced with a
    pinned test.
    """

    N_SEEDS = int(os.environ.get("REPRO_EQUIV_RANDOM_SEEDS", "3"))

    def test_fresh_seeds_whole_tournament_identical(self):
        seeds = np.random.SeedSequence().generate_state(self.N_SEEDS)
        for seed in seeds.tolist():
            ref, fast, batch = build_engines()
            participants = list(range(12)) + [16, 17, 18]
            s_ref = run_engine(ref, participants, 12, seed)
            s_fast = run_engine(fast, participants, 12, seed)
            s_batch = run_engine(batch, participants, 12, seed)
            assert s_ref.to_dict() == s_fast.to_dict(), f"oracle seed {seed}"
            assert s_ref.to_dict() == s_batch.to_dict(), f"oracle seed {seed}"
            assert np.array_equal(
                ref.payoff_matrix(), fast.payoff_matrix()
            ), f"oracle seed {seed}"
            assert np.array_equal(
                ref.payoff_matrix(), batch.payoff_matrix()
            ), f"oracle seed {seed}"
            assert np.array_equal(ref.fitness(), fast.fitness()), (
                f"oracle seed {seed}"
            )
            assert np.array_equal(ref.fitness(), batch.fitness()), (
                f"oracle seed {seed}"
            )

    def test_fresh_seeds_exchange_identical(self):
        """The hard case on fresh seeds too: exchange and oracle sharing one
        generator."""
        config = ExchangeConfig(
            enabled=True, interval=4, fanout=2, positive_only=False
        )
        seeds = np.random.SeedSequence().generate_state(max(1, self.N_SEEDS // 2))
        for seed in seeds.tolist():
            ref, fast, batch = build_engines()
            participants = list(range(12)) + [16, 17]
            results = [
                run_engine(
                    engine, participants, 12, seed, exchange=config, shared_rng=True
                )
                for engine in (ref, fast, batch)
            ]
            assert results[0].to_dict() == results[1].to_dict(), (
                f"oracle seed {seed}"
            )
            assert results[0].to_dict() == results[2].to_dict(), (
                f"oracle seed {seed}"
            )
            assert np.array_equal(
                ref.payoff_matrix(), batch.payoff_matrix()
            ), f"oracle seed {seed}"

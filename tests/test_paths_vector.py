"""Tests for the vectorized tournament sampler behind the turbo engine.

The sampler's contract (``paths/vector.py``) is *distributional identity*
with the sequential :meth:`RandomPathOracle.draw`: same destination law,
same hop/path-count laws, same uniform ordered-subset law per path.  These
tests pin the structural guarantees exactly and the distributions
statistically (chi-squared-style bounds loose enough to never flake, tight
enough to catch a wrong law), plus the packing fallback for oracles without
a vectorized path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.paths.distributions import LONGER_PATHS, SHORTER_PATHS
from repro.paths.oracle import GameSetup, RandomPathOracle, ScriptedPathOracle
from repro.paths.vector import GamePlanArrays, plan_tournament_arrays


def sample(n_rounds=40, seed=0, participants=None, hop_dist=SHORTER_PATHS):
    participants = participants or list(range(20))
    oracle = RandomPathOracle(np.random.default_rng(seed), hop_dist)
    return (
        plan_tournament_arrays(oracle, participants * n_rounds, participants),
        participants,
    )


class TestStructure:
    def test_shapes_and_offsets_consistent(self):
        plan, participants = sample()
        assert plan.n_games == 40 * len(participants)
        assert plan.src.tolist() == participants * 40
        assert plan.game_path_start[0] == 0
        assert plan.game_path_start[-1] == plan.path_nodes.shape[0]
        assert np.array_equal(np.diff(plan.game_path_start), plan.n_paths)
        assert np.array_equal(
            plan.path_game, np.repeat(np.arange(plan.n_games), plan.n_paths)
        )
        # path_col counts candidates within each game from zero
        for g in (0, 7, plan.n_games - 1):
            lo, hi = plan.game_path_start[g], plan.game_path_start[g + 1]
            assert plan.path_col[lo:hi].tolist() == list(range(hi - lo))

    def test_paths_are_valid_games(self):
        plan, participants = sample(seed=3)
        pset = set(participants)
        for g in range(plan.n_games):
            src, dst = int(plan.src[g]), int(plan.dst[g])
            assert src != dst and dst in pset
            for path in plan.paths_of(g):
                assert len(path) >= 1
                assert len(set(path)) == len(path), "repeated intermediate"
                assert src not in path and dst not in path
                assert set(path) <= pset

    def test_padding_is_minus_one_past_length(self):
        plan, _ = sample(seed=5)
        h = plan.path_nodes.shape[1]
        cols = np.arange(h)[None, :]
        assert (plan.path_nodes[cols >= plan.path_len[:, None]] == -1).all()
        assert (plan.path_nodes[cols < plan.path_len[:, None]] >= 0).all()

    def test_hop_clamp_small_pool(self):
        """A 4-participant pool clamps every path to the 2 available
        intermediates, exactly like the sequential generator."""
        plan, _ = sample(n_rounds=30, seed=2, participants=[3, 5, 9, 11])
        assert int(plan.path_len.max()) <= 2

    def test_too_small_pool_raises(self):
        oracle = RandomPathOracle(np.random.default_rng(0), SHORTER_PATHS)
        with pytest.raises(ValueError, match="at least 3 participants"):
            plan_tournament_arrays(oracle, [0, 1], [0, 1])


class TestDistributionalIdentity:
    """Empirical laws vs the sequential sampler, on matched sample sizes."""

    N_ROUNDS = 250  # 5000 games per sampler

    def law_summary(self, games):
        dests = {}
        hops = {}
        counts = {}
        first_nodes = {}
        for src, dst, paths in games:
            dests[(src, dst)] = dests.get((src, dst), 0) + 1
            k = len(paths[0])
            hops[k] = hops.get(k, 0) + 1
            counts[len(paths)] = counts.get(len(paths), 0) + 1
            node = paths[0][0]
            first_nodes[node] = first_nodes.get(node, 0) + 1
        return dests, hops, counts, first_nodes

    def test_laws_match_sequential_sampler(self):
        participants = list(range(12))
        plan, _ = sample(
            n_rounds=self.N_ROUNDS, seed=17, participants=participants
        )
        vec_games = [
            (int(plan.src[g]), int(plan.dst[g]), plan.paths_of(g))
            for g in range(plan.n_games)
        ]
        oracle = RandomPathOracle(np.random.default_rng(18), SHORTER_PATHS)
        seq_games = []
        for _ in range(self.N_ROUNDS):
            for src in participants:
                setup = oracle.draw(src, participants)
                seq_games.append((setup.source, setup.destination, setup.paths))
        v_dest, v_hops, v_counts, v_first = self.law_summary(vec_games)
        s_dest, s_hops, s_counts, s_first = self.law_summary(seq_games)
        n = len(vec_games)
        # hop-length law: per-category frequency within 3 sigma + slack
        for law_v, law_s in ((v_hops, s_hops), (v_counts, s_counts)):
            for key in set(law_v) | set(law_s):
                p_v = law_v.get(key, 0) / n
                p_s = law_s.get(key, 0) / n
                sigma = np.sqrt(max(p_s, 1 / n) * (1 - min(p_s, 0.99)) / n)
                assert abs(p_v - p_s) < 3.5 * np.sqrt(2) * sigma + 0.005, (
                    f"category {key}: {p_v:.4f} vs {p_s:.4f}"
                )
        # destination uniformity: every (src, dst) pair roughly equally likely
        expected = n / (len(participants) * (len(participants) - 1))
        for law in (v_dest, s_dest):
            observed = np.array(list(law.values()), dtype=float)
            assert len(law) == len(participants) * (len(participants) - 1)
            assert abs(observed.mean() - expected) < 1e-9
            assert observed.std() < 0.35 * expected
        # first-intermediate uniformity (proxy for the ordered-subset law)
        v_arr = np.array([v_first.get(p, 0) for p in participants], float)
        s_arr = np.array([s_first.get(p, 0) for p in participants], float)
        assert abs(v_arr.mean() - s_arr.mean()) < 1e-9
        assert np.abs(v_arr - v_arr.mean()).max() < 0.15 * v_arr.mean()
        assert np.abs(v_arr / n - s_arr / n).max() < 0.03

    def test_longer_paths_mode(self):
        plan, _ = sample(n_rounds=120, seed=23, hop_dist=LONGER_PATHS)
        lengths = plan.path_len
        # LONGER_PATHS puts 60% of mass on >= 5 hops (>= 4 intermediates)
        assert (lengths >= 4).mean() > 0.4
        assert int(lengths.max()) == 9  # 10 hops -> 9 intermediates

    def test_rng_divergence_is_expected(self):
        """Documents the contract: same seed, different stream layout than
        the sequential sampler — distributions match, trajectories don't."""
        participants = list(range(10))
        plan, _ = sample(n_rounds=2, seed=29, participants=participants)
        oracle = RandomPathOracle(np.random.default_rng(29), SHORTER_PATHS)
        seq = [oracle.draw(s, participants) for s in participants] + [
            oracle.draw(s, participants) for s in participants
        ]
        same = all(
            int(plan.dst[g]) == seq[g].destination for g in range(plan.n_games)
        )
        assert not same


class TestPlanFallback:
    def test_scripted_oracle_packs_exactly(self):
        setups = [
            GameSetup(source=0, destination=3, paths=((1, 2), (4,))),
            GameSetup(source=1, destination=4, paths=((2,),)),
            GameSetup(source=2, destination=0, paths=((3, 4, 1),)),
        ]
        oracle = ScriptedPathOracle(setups)
        plan = plan_tournament_arrays(oracle, [0, 1, 2], list(range(5)))
        assert isinstance(plan, GamePlanArrays)
        assert plan.n_games == 3
        assert plan.src.tolist() == [0, 1, 2]
        assert plan.dst.tolist() == [3, 4, 0]
        assert plan.n_paths.tolist() == [2, 1, 1]
        assert plan.paths_of(0) == [[1, 2], [4]]
        assert plan.paths_of(1) == [[2]]
        assert plan.paths_of(2) == [[3, 4, 1]]
        assert plan.max_paths == 2
        assert plan.path_len.tolist() == [2, 1, 1, 3]

    def test_source_outside_participants_uses_fallback(self):
        """A source not seated in the tournament falls back to the
        sequential path (the vectorized pool layout assumes seated
        sources); the draw still succeeds."""
        oracle = RandomPathOracle(np.random.default_rng(4), SHORTER_PATHS)
        plan = plan_tournament_arrays(oracle, [99, 99], list(range(8)))
        assert plan.n_games == 2
        assert plan.src.tolist() == [99, 99]
        for g in range(2):
            for path in plan.paths_of(g):
                assert 99 not in path

"""Tests for the vectorized tournament sampler behind the turbo engine.

The sampler's contract (``paths/vector.py``) is *distributional identity*
with the sequential :meth:`RandomPathOracle.draw`: same destination law,
same hop/path-count laws, same uniform ordered-subset law per path.  These
tests pin the structural guarantees exactly and the distributions
statistically (chi-squared-style bounds loose enough to never flake, tight
enough to catch a wrong law), plus the packing fallback for oracles without
a vectorized path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.paths.distributions import LONGER_PATHS, SHORTER_PATHS
from repro.paths.oracle import GameSetup, RandomPathOracle, ScriptedPathOracle
from repro.paths.vector import GamePlanArrays, plan_tournament_arrays


def sample(n_rounds=40, seed=0, participants=None, hop_dist=SHORTER_PATHS):
    participants = participants or list(range(20))
    oracle = RandomPathOracle(np.random.default_rng(seed), hop_dist)
    return (
        plan_tournament_arrays(oracle, participants * n_rounds, participants),
        participants,
    )


class TestStructure:
    def test_shapes_and_offsets_consistent(self):
        plan, participants = sample()
        assert plan.n_games == 40 * len(participants)
        assert plan.src.tolist() == participants * 40
        assert plan.game_path_start[0] == 0
        assert plan.game_path_start[-1] == plan.path_nodes.shape[0]
        assert np.array_equal(np.diff(plan.game_path_start), plan.n_paths)
        assert np.array_equal(
            plan.path_game, np.repeat(np.arange(plan.n_games), plan.n_paths)
        )
        # path_col counts candidates within each game from zero
        for g in (0, 7, plan.n_games - 1):
            lo, hi = plan.game_path_start[g], plan.game_path_start[g + 1]
            assert plan.path_col[lo:hi].tolist() == list(range(hi - lo))

    def test_paths_are_valid_games(self):
        plan, participants = sample(seed=3)
        pset = set(participants)
        for g in range(plan.n_games):
            src, dst = int(plan.src[g]), int(plan.dst[g])
            assert src != dst and dst in pset
            for path in plan.paths_of(g):
                assert len(path) >= 1
                assert len(set(path)) == len(path), "repeated intermediate"
                assert src not in path and dst not in path
                assert set(path) <= pset

    def test_padding_is_minus_one_past_length(self):
        plan, _ = sample(seed=5)
        h = plan.path_nodes.shape[1]
        cols = np.arange(h)[None, :]
        assert (plan.path_nodes[cols >= plan.path_len[:, None]] == -1).all()
        assert (plan.path_nodes[cols < plan.path_len[:, None]] >= 0).all()

    def test_hop_clamp_small_pool(self):
        """A 4-participant pool clamps every path to the 2 available
        intermediates, exactly like the sequential generator."""
        plan, _ = sample(n_rounds=30, seed=2, participants=[3, 5, 9, 11])
        assert int(plan.path_len.max()) <= 2

    def test_too_small_pool_raises(self):
        oracle = RandomPathOracle(np.random.default_rng(0), SHORTER_PATHS)
        with pytest.raises(ValueError, match="at least 3 participants"):
            plan_tournament_arrays(oracle, [0, 1], [0, 1])


class TestDistributionalIdentity:
    """Empirical laws vs the sequential sampler, on matched sample sizes."""

    N_ROUNDS = 250  # 5000 games per sampler

    def law_summary(self, games):
        dests = {}
        hops = {}
        counts = {}
        first_nodes = {}
        for src, dst, paths in games:
            dests[(src, dst)] = dests.get((src, dst), 0) + 1
            k = len(paths[0])
            hops[k] = hops.get(k, 0) + 1
            counts[len(paths)] = counts.get(len(paths), 0) + 1
            node = paths[0][0]
            first_nodes[node] = first_nodes.get(node, 0) + 1
        return dests, hops, counts, first_nodes

    def test_laws_match_sequential_sampler(self):
        participants = list(range(12))
        plan, _ = sample(
            n_rounds=self.N_ROUNDS, seed=17, participants=participants
        )
        vec_games = [
            (int(plan.src[g]), int(plan.dst[g]), plan.paths_of(g))
            for g in range(plan.n_games)
        ]
        oracle = RandomPathOracle(np.random.default_rng(18), SHORTER_PATHS)
        seq_games = []
        for _ in range(self.N_ROUNDS):
            for src in participants:
                setup = oracle.draw(src, participants)
                seq_games.append((setup.source, setup.destination, setup.paths))
        v_dest, v_hops, v_counts, v_first = self.law_summary(vec_games)
        s_dest, s_hops, s_counts, s_first = self.law_summary(seq_games)
        n = len(vec_games)
        # hop-length law: per-category frequency within 3 sigma + slack
        for law_v, law_s in ((v_hops, s_hops), (v_counts, s_counts)):
            for key in set(law_v) | set(law_s):
                p_v = law_v.get(key, 0) / n
                p_s = law_s.get(key, 0) / n
                sigma = np.sqrt(max(p_s, 1 / n) * (1 - min(p_s, 0.99)) / n)
                assert abs(p_v - p_s) < 3.5 * np.sqrt(2) * sigma + 0.005, (
                    f"category {key}: {p_v:.4f} vs {p_s:.4f}"
                )
        # destination uniformity: every (src, dst) pair roughly equally likely
        expected = n / (len(participants) * (len(participants) - 1))
        for law in (v_dest, s_dest):
            observed = np.array(list(law.values()), dtype=float)
            assert len(law) == len(participants) * (len(participants) - 1)
            assert abs(observed.mean() - expected) < 1e-9
            assert observed.std() < 0.35 * expected
        # first-intermediate uniformity (proxy for the ordered-subset law)
        v_arr = np.array([v_first.get(p, 0) for p in participants], float)
        s_arr = np.array([s_first.get(p, 0) for p in participants], float)
        assert abs(v_arr.mean() - s_arr.mean()) < 1e-9
        assert np.abs(v_arr - v_arr.mean()).max() < 0.15 * v_arr.mean()
        assert np.abs(v_arr / n - s_arr / n).max() < 0.03

    def test_longer_paths_mode(self):
        plan, _ = sample(n_rounds=120, seed=23, hop_dist=LONGER_PATHS)
        lengths = plan.path_len
        # LONGER_PATHS puts 60% of mass on >= 5 hops (>= 4 intermediates)
        assert (lengths >= 4).mean() > 0.4
        assert int(lengths.max()) == 9  # 10 hops -> 9 intermediates

    def test_rng_divergence_is_expected(self):
        """Documents the contract: same seed, different stream layout than
        the sequential sampler — distributions match, trajectories don't."""
        participants = list(range(10))
        plan, _ = sample(n_rounds=2, seed=29, participants=participants)
        oracle = RandomPathOracle(np.random.default_rng(29), SHORTER_PATHS)
        seq = [oracle.draw(s, participants) for s in participants] + [
            oracle.draw(s, participants) for s in participants
        ]
        same = all(
            int(plan.dst[g]) == seq[g].destination for g in range(plan.n_games)
        )
        assert not same


class TestPlanFallback:
    def test_scripted_oracle_packs_exactly(self):
        setups = [
            GameSetup(source=0, destination=3, paths=((1, 2), (4,))),
            GameSetup(source=1, destination=4, paths=((2,),)),
            GameSetup(source=2, destination=0, paths=((3, 4, 1),)),
        ]
        oracle = ScriptedPathOracle(setups)
        plan = plan_tournament_arrays(oracle, [0, 1, 2], list(range(5)))
        assert isinstance(plan, GamePlanArrays)
        assert plan.n_games == 3
        assert plan.src.tolist() == [0, 1, 2]
        assert plan.dst.tolist() == [3, 4, 0]
        assert plan.n_paths.tolist() == [2, 1, 1]
        assert plan.paths_of(0) == [[1, 2], [4]]
        assert plan.paths_of(1) == [[2]]
        assert plan.paths_of(2) == [[3, 4, 1]]
        assert plan.max_paths == 2
        assert plan.path_len.tolist() == [2, 1, 1, 3]

    def test_source_outside_participants_uses_fallback(self):
        """A source not seated in the tournament falls back to the
        sequential path (the vectorized pool layout assumes seated
        sources); the draw still succeeds."""
        oracle = RandomPathOracle(np.random.default_rng(4), SHORTER_PATHS)
        plan = plan_tournament_arrays(oracle, [99, 99], list(range(8)))
        assert plan.n_games == 2
        assert plan.src.tolist() == [99, 99]
        for g in range(2):
            for path in plan.paths_of(g):
                assert 99 not in path


# -- native routed sampler (topology/mobile oracles) --------------------------


def make_topology_oracle(seed=0, n=20, radio=0.45):
    from repro.network.topology import GeometricTopology, TopologyPathOracle

    rng = np.random.default_rng(seed)
    return TopologyPathOracle(GeometricTopology(range(n), radio, rng=rng), rng)


def make_mobile_oracle(seed=0, n=20, radio=0.45, **kwargs):
    from repro.mobility import DynamicTopology, MobilePathOracle, RandomWaypoint

    model = RandomWaypoint(0.005, 0.02, pause_time=0.0)
    topo = DynamicTopology(
        list(range(n)), radio, model, np.random.default_rng(seed)
    )
    return MobilePathOracle(topo, np.random.default_rng(seed + 1), **kwargs)


class TestRoutedSamplerStructure:
    @pytest.mark.parametrize("kind", ["topology", "mobile"])
    def test_shapes_and_padding(self, kind):
        make = make_topology_oracle if kind == "topology" else make_mobile_oracle
        oracle = make()
        participants = list(range(20))
        plan = plan_tournament_arrays(oracle, participants * 5, participants)
        assert isinstance(plan, GamePlanArrays)
        assert plan.n_games == 100
        assert plan.src.tolist() == participants * 5
        assert np.array_equal(np.diff(plan.game_path_start), plan.n_paths)
        assert np.array_equal(
            plan.path_game, np.repeat(np.arange(plan.n_games), plan.n_paths)
        )
        assert (plan.n_paths >= 1).all()
        cols = np.arange(plan.path_nodes.shape[1])[None, :]
        valid = cols < plan.path_len[:, None]
        assert (plan.path_nodes[valid] >= 0).all()
        assert (plan.path_nodes[~valid] == -1).all()

    @pytest.mark.parametrize("kind", ["topology", "mobile"])
    def test_games_are_valid_setups(self, kind):
        make = make_topology_oracle if kind == "topology" else make_mobile_oracle
        oracle = make()
        participants = list(range(20))
        plan = plan_tournament_arrays(oracle, participants * 3, participants)
        active = set(participants)
        for g in range(plan.n_games):
            src, dst = int(plan.src[g]), int(plan.dst[g])
            assert dst in active and dst != src
            paths = plan.paths_of(g)
            assert paths
            GameSetup(
                source=src,
                destination=dst,
                paths=tuple(tuple(p) for p in paths),
            )
            for path in paths:
                assert set(path) <= active

    def test_paths_equal_the_route_providers_answer(self):
        """The sampler serves exactly the routes the provider computes for
        the drawn pair — pinned against a twin oracle's provider."""
        oracle = make_topology_oracle(seed=3)
        twin = make_topology_oracle(seed=3)
        participants = list(range(20))
        plan = plan_tournament_arrays(oracle, participants * 2, participants)
        twin.provider.rescope(participants)
        for g in range(plan.n_games):
            expected = twin.provider.routes(int(plan.src[g]), int(plan.dst[g]))
            assert plan.paths_of(g) == [list(p) for p in expected]

    def test_source_outside_participants_uses_fallback(self):
        oracle = make_topology_oracle(seed=5)
        participants = list(range(1, 20))
        # source 0 is not a participant: the sequential fallback must serve
        plan = plan_tournament_arrays(oracle, [0] * 4, participants)
        assert plan.n_games == 4
        assert set(plan.src.tolist()) == {0}


class TestRoutedSamplerDistribution:
    def test_destination_law_matches_sequential(self):
        """Destinations are uniform over the routable others, as rejection
        sampling produces — KS-compared against the sequential planner on a
        twin oracle."""
        from repro.analysis.equivalence import ks_2samp
        from repro.paths.oracle import plan_games

        participants = list(range(20))
        vec_oracle = make_topology_oracle(seed=11)
        seq_oracle = make_topology_oracle(seed=11)
        vec_dsts: list[float] = []
        seq_dsts: list[float] = []
        for _ in range(12):
            plan = plan_tournament_arrays(
                vec_oracle, participants * 3, participants
            )
            vec_dsts.extend(plan.dst.tolist())
            seq = plan_games(seq_oracle, participants * 3, participants)
            seq_dsts.extend(d for _, d, _ in seq)
        result = ks_2samp(vec_dsts, seq_dsts)
        assert result.pvalue > 0.01, f"destination law diverges: {result}"

    def test_per_source_destinations_cover_routable_set(self):
        oracle = make_topology_oracle(seed=2)
        participants = list(range(20))
        plan = plan_tournament_arrays(oracle, participants * 60, participants)
        drawn = set(
            zip(plan.src.tolist(), plan.dst.tolist())
        )
        # source 0 must have reached essentially all its routable partners
        twin = make_topology_oracle(seed=2)
        twin.provider.rescope(participants)
        routable = {
            d for d in participants[1:] if twin.provider.routes(0, d)
        }
        reached = {d for s, d in drawn if s == 0}
        assert reached == routable


class TestRoutedSamplerClocking:
    """The mobile oracle's draw-count-clocked stepping must fire at exactly
    the sequential draw counts (window boundaries)."""

    @pytest.mark.parametrize("step_every", ["round", 7, "tournament"])
    def test_step_counts_match_sequential(self, step_every):
        participants = list(range(20))
        sources = participants * 3
        counts = {}
        for mode in ("vector", "sequential"):
            oracle = make_mobile_oracle(seed=4, step_every=step_every)
            calls = []
            original = oracle.topology.step
            oracle.topology.step = lambda: calls.append(1) or original()
            if mode == "vector":
                plan_tournament_arrays(oracle, sources, participants)
            else:
                for source in sources:
                    oracle.draw(source, participants)
            counts[mode] = (len(calls), oracle._draws_since_step)
        assert counts["vector"] == counts["sequential"]

    def test_partial_window_bookkeeping_carries_over(self):
        """A plan that ends mid-window leaves the draw counter exactly where
        the sequential draws would."""
        participants = list(range(20))
        vec = make_mobile_oracle(seed=6, step_every=7)
        seq = make_mobile_oracle(seed=6, step_every=7)
        plan_tournament_arrays(vec, participants[:10], participants)
        for source in participants[:10]:
            seq.draw(source, participants)
        assert vec._draws_since_step == seq._draws_since_step
        # and a follow-up plan keeps stepping on the shared schedule
        calls = []
        original = vec.topology.step
        vec.topology.step = lambda: calls.append(1) or original()
        plan_tournament_arrays(vec, participants[:10], participants)
        calls_vec = len(calls)
        calls2 = []
        original2 = seq.topology.step
        seq.topology.step = lambda: calls2.append(1) or original2()
        for source in participants[:10]:
            seq.draw(source, participants)
        assert calls_vec == len(calls2)

    def test_slot_cache_reused_across_tournaments(self):
        """The persistent pair->slot cache must survive static tournaments
        and be invalidated by epoch changes."""
        oracle = make_topology_oracle(seed=9)
        participants = list(range(20))
        plan_tournament_arrays(oracle, participants * 3, participants)
        cache = oracle._vector_cache
        plan_tournament_arrays(oracle, participants * 3, participants)
        assert oracle._vector_cache is cache  # reused, not rebuilt
        oracle.topology.invalidate_routes()
        oracle.provider.sync()
        plan_tournament_arrays(oracle, participants * 3, participants)
        assert oracle._vector_cache.epoch == oracle.topology.epoch

    def test_slot_cache_invalidated_by_epochless_steps(self):
        """A topology step that moves positions without changing the edge
        set (no epoch bump) must still drop the pair resolutions — the
        provider's never-cache boost/virtual routes are position-dependent."""
        oracle = make_mobile_oracle(seed=8, step_every="tournament")
        participants = list(range(20))
        plan_tournament_arrays(oracle, participants * 2, participants)
        cache = oracle._vector_cache
        known_before = int((cache.route_slot != -2).sum())
        assert known_before > 0
        # an epoch-preserving "step": positions logically moved, edges kept
        oracle.topology.steps += 1
        plan_tournament_arrays(oracle, participants * 2, participants)
        assert oracle._vector_cache is cache  # reused container...
        assert cache.steps == oracle.topology.steps  # ...but re-keyed


# -- stacked generation planner (fused engine) --------------------------------


class TestGenerationPlan:
    """:func:`plan_generation_arrays`: the whole generation as one
    round-major stacked plan (game ``g = round * T * n + tournament * n +
    seat``)."""

    def make_seatings(self, n_tournaments=3, n=12, seed=2):
        rng = np.random.default_rng(seed)
        return [
            [int(v) for v in rng.permutation(n)] for _ in range(n_tournaments)
        ]

    def test_round_major_layout_random(self):
        from repro.paths.vector import plan_generation_arrays

        seatings = self.make_seatings()
        rounds, n = 5, len(seatings[0])
        oracle = RandomPathOracle(np.random.default_rng(1), SHORTER_PATHS)
        plan = plan_generation_arrays(oracle, seatings, rounds)
        slate = len(seatings) * n
        assert plan.n_games == rounds * slate
        # every slate's source order is the concatenation of the seatings
        slate_sources = [s for seating in seatings for s in seating]
        for r in range(rounds):
            assert plan.src[r * slate : (r + 1) * slate].tolist() == slate_sources
        assert np.array_equal(np.diff(plan.game_path_start), plan.n_paths)

    def test_cross_tournament_pool_isolation(self):
        """Each game draws destinations and intermediates from its *own*
        tournament's seating only — stacked pools never mix."""
        from repro.paths.vector import plan_generation_arrays

        rng = np.random.default_rng(7)
        # seatings over disjoint id ranges make any pool mixing visible
        seatings = [
            [int(v) for v in 100 * t + rng.permutation(10)] for t in range(3)
        ]
        rounds = 6
        oracle = RandomPathOracle(np.random.default_rng(3), SHORTER_PATHS)
        plan = plan_generation_arrays(oracle, seatings, rounds)
        slate = 30
        for g in range(plan.n_games):
            t = (g % slate) // 10
            allowed = set(seatings[t])
            src, dst = int(plan.src[g]), int(plan.dst[g])
            assert src in allowed and dst in allowed and src != dst
            for path in plan.paths_of(g):
                assert set(path) <= allowed
                assert src not in path and dst not in path
                assert len(set(path)) == len(path)

    def test_stacked_random_matches_single_distributions(self):
        """The stacked sampler's hop/path-count laws match the
        single-tournament sampler's (same draw core, same laws)."""
        from repro.paths.vector import plan_generation_arrays

        participants = list(range(20))
        oracle_single = RandomPathOracle(np.random.default_rng(11), SHORTER_PATHS)
        single = plan_tournament_arrays(
            oracle_single, participants * 30, participants
        )
        oracle_stacked = RandomPathOracle(np.random.default_rng(11), SHORTER_PATHS)
        stacked = plan_generation_arrays(
            oracle_stacked, [participants] * 6, 5
        )
        assert stacked.n_games == single.n_games
        for plan_arr in (single, stacked):
            assert (plan_arr.n_paths >= 1).all()
        # pooled hop-length histogram: loose bound, same law
        h1 = np.bincount(single.path_len, minlength=8)[:8] / single.path_len.size
        h2 = np.bincount(stacked.path_len, minlength=8)[:8] / stacked.path_len.size
        assert np.abs(h1 - h2).max() < 0.08

    @pytest.mark.parametrize("kind", ["random", "mobile"])
    def test_hook_fires_once_per_tournament(self, kind):
        from repro.paths.vector import plan_generation_arrays

        if kind == "random":
            oracle = RandomPathOracle(np.random.default_rng(1), SHORTER_PATHS)
        else:
            oracle = make_mobile_oracle(seed=5, step_every="tournament")
        calls = []
        seatings = [list(range(12)) for _ in range(4)]
        plan = plan_generation_arrays(
            oracle, seatings, 3, on_tournament_end=lambda: calls.append(1)
        )
        assert len(calls) == 4
        assert plan.n_games == 3 * 4 * 12

    def test_routed_interleave_matches_round_major_layout(self):
        from repro.paths.vector import plan_generation_arrays

        oracle = make_topology_oracle(seed=3)
        seatings = self.make_seatings(n_tournaments=2, n=12, seed=9)
        rounds = 4
        plan = plan_generation_arrays(oracle, seatings, rounds)
        slate = 2 * 12
        assert plan.n_games == rounds * slate
        slate_sources = [s for seating in seatings for s in seating]
        for r in range(rounds):
            assert plan.src[r * slate : (r + 1) * slate].tolist() == slate_sources
        # offsets stay self-consistent after the interleave
        assert plan.game_path_start[0] == 0
        assert plan.game_path_start[-1] == plan.path_nodes.shape[0]
        assert np.array_equal(np.diff(plan.game_path_start), plan.n_paths)
        assert np.array_equal(
            plan.path_game, np.repeat(np.arange(plan.n_games), plan.n_paths)
        )

    def test_validation(self):
        from repro.paths.vector import plan_generation_arrays

        oracle = RandomPathOracle(np.random.default_rng(1), SHORTER_PATHS)
        with pytest.raises(ValueError, match="at least one seating"):
            plan_generation_arrays(oracle, [], 3)
        with pytest.raises(ValueError, match="same size"):
            plan_generation_arrays(oracle, [[0, 1, 2, 3], [0, 1, 2]], 3)
        with pytest.raises(ValueError, match="rounds must be >= 1"):
            plan_generation_arrays(oracle, [[0, 1, 2, 3]], 0)
        with pytest.raises(ValueError, match="distinct participants"):
            plan_generation_arrays(oracle, [[0, 1, 1, 3]], 2)

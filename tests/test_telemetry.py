"""Unit tests for the telemetry core: registry primitives and the runtime.

The registry's merge semantics carry real weight — worker-process
replication snapshots fold into the experiment-wide view through them — so
counters/histograms/timers are tested to merge associatively and gauges to
stay last-write-wins.  The runtime tests pin the process-global recorder
lifecycle (no-op singleton by default, session scoping, nesting) that the
zero-overhead contract builds on.
"""

from __future__ import annotations

import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    TelemetryConfig,
    Timer,
    get_telemetry,
    telemetry_session,
)
from repro.telemetry.runtime import NULL_TELEMETRY, _NULL_SPAN


class TestRegistryPrimitives:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.count("games")
        reg.count("games", 41)
        assert reg.counter("games").snapshot() == 42

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("util", 0.5)
        reg.set_gauge("util", 0.9)
        assert reg.gauge("util").snapshot() == 0.9

    def test_histogram_buckets_and_summary(self):
        h = Histogram(bounds=(1, 10, 100))
        for value in (0.5, 5, 50, 500):
            h.observe(value)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 555.5
        assert snap["min"] == 0.5
        assert snap["max"] == 500
        assert snap["le_1"] == 1
        assert snap["le_10"] == 1
        assert snap["le_100"] == 1
        assert snap["overflow"] == 1

    def test_histogram_weighted_observe(self):
        h = Histogram(bounds=(4, 8))
        h.observe(2, n=5)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == 10
        assert snap["le_4"] == 5

    def test_empty_histogram_snapshot_is_finite(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0

    def test_timer_aggregates(self):
        t = Timer()
        t.add(0.5)
        t.add(1.5)
        assert t.count == 2
        assert t.total_s == 2.0
        assert t.min_s == 0.5 and t.max_s == 1.5
        assert t.mean_s == 1.0

    def test_timer_context_manager_records(self):
        t = Timer()
        with t.time():
            pass
        assert t.count == 1
        assert t.total_s >= 0.0

    def test_snapshot_keys_sorted(self):
        reg = MetricsRegistry()
        reg.count("b")
        reg.count("a")
        assert list(reg.snapshot()["counters"]) == ["a", "b"]


class TestRegistryMerge:
    def build(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.count("games", 10)
        reg.set_gauge("workers", 4)
        reg.observe("ages", 3)
        reg.timer_add("wall", 1.0)
        return reg

    def test_merge_doubles_counters_timers_histograms(self):
        reg = self.build()
        reg.merge(self.build().snapshot())
        snap = reg.snapshot()
        assert snap["counters"]["games"] == 20
        assert snap["histograms"]["ages"]["count"] == 2
        assert snap["timers"]["wall"]["count"] == 2
        assert snap["timers"]["wall"]["total_s"] == 2.0
        # gauges are last-write-wins, not additive
        assert snap["gauges"]["workers"] == 4

    def test_merge_into_empty_is_identity(self):
        reg = MetricsRegistry()
        reg.merge(self.build().snapshot())
        assert reg.snapshot() == self.build().snapshot()

    def test_merge_empty_snapshots_is_noop(self):
        reg = self.build()
        before = reg.snapshot()
        reg.merge(MetricsRegistry().snapshot())
        assert reg.snapshot() == before

    def test_merge_is_associative(self):
        a, b, c = self.build(), self.build(), self.build()
        left = MetricsRegistry()
        left.merge(a.snapshot())
        left.merge(b.snapshot())
        left.merge(c.snapshot())
        inner = MetricsRegistry()
        inner.merge(b.snapshot())
        inner.merge(c.snapshot())
        right = MetricsRegistry()
        right.merge(a.snapshot())
        right.merge(inner.snapshot())
        assert left.snapshot() == right.snapshot()


class TestRuntime:
    def test_default_is_null_singleton(self):
        assert get_telemetry() is NULL_TELEMETRY
        assert get_telemetry().enabled is False

    def test_null_span_is_shared_and_inert(self):
        null = NullTelemetry()
        assert null.span("x") is _NULL_SPAN
        with null.span("x"):
            pass
        null.count("a")
        null.observe("b", 1.0)
        null.timer_add("c", 0.1)
        null.event("d", k=1)

    def test_session_installs_and_restores(self):
        assert get_telemetry() is NULL_TELEMETRY
        with telemetry_session(TelemetryConfig(enabled=True)) as tel:
            assert get_telemetry() is tel
            assert tel.enabled is True
        assert get_telemetry() is NULL_TELEMETRY

    def test_sessions_nest(self):
        with telemetry_session() as outer:
            with telemetry_session() as inner:
                assert get_telemetry() is inner
            assert get_telemetry() is outer

    def test_session_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with telemetry_session():
                raise RuntimeError("boom")
        assert get_telemetry() is NULL_TELEMETRY

    def test_span_paths_nest(self):
        with telemetry_session() as tel:
            with tel.span("generation"):
                with tel.span("tournament"):
                    pass
                with tel.span("tournament"):
                    pass
            timers = tel.snapshot()["timers"]
        assert timers["span.generation"]["count"] == 1
        assert timers["span.generation/tournament"]["count"] == 2

    def test_events_recorded_with_fields(self):
        with telemetry_session() as tel:
            tel.event("custom", answer=42)
        assert tel.events[0]["event"] == "custom"
        assert tel.events[0]["answer"] == 42
        assert tel.events[0]["t_s"] >= 0.0

    def test_event_cap_drops_and_counts(self):
        config = TelemetryConfig(enabled=True, max_events=2)
        with telemetry_session(config) as tel:
            for _ in range(5):
                tel.event("e")
        assert len(tel.events) == 2
        assert tel.dropped_events == 3

    def test_events_disabled_keeps_aggregates(self):
        config = TelemetryConfig(enabled=True, events=False)
        with telemetry_session(config) as tel:
            with tel.span("round"):
                pass
        assert tel.events == []
        assert tel.snapshot()["timers"]["span.round"]["count"] == 1

    def test_observe_custom_bounds(self):
        with telemetry_session() as tel:
            tel.observe("ages", 3, bounds=(1, 2, 4))
        snap = tel.snapshot()["histograms"]["ages"]
        assert snap["le_4"] == 1 and snap["le_2"] == 0

    def test_observe_default_bounds(self):
        with telemetry_session() as tel:
            tel.observe("t", 0.005)
        snap = tel.snapshot()["histograms"]["t"]
        assert snap[f"le_{DEFAULT_BUCKETS[1]:g}"] == 1

    def test_export_shape(self):
        with telemetry_session() as tel:
            tel.count("games", 7)
            tel.event("e")
        export = tel.export()
        assert set(export) == {"metrics", "events", "dropped_events"}
        assert export["metrics"]["counters"]["games"] == 7
        assert len(export["events"]) == 1
        assert export["dropped_events"] == 0


class TestTelemetryConfig:
    def test_defaults_disabled(self):
        config = TelemetryConfig()
        assert config.enabled is False
        assert config.events is True

    def test_round_trip(self):
        config = TelemetryConfig(enabled=True, events=False, max_events=9)
        assert TelemetryConfig.from_dict(config.to_dict()) == config

    def test_with_replaces(self):
        assert TelemetryConfig().with_(enabled=True).enabled is True

    def test_negative_max_events_rejected(self):
        with pytest.raises(ValueError, match="max_events"):
            TelemetryConfig(max_events=-1)

    def test_telemetry_object_defaults_enabled_config(self):
        tel = Telemetry()
        assert tel.config.enabled is True

"""Unit tests for the statistical-equivalence harness itself.

The harness gates an engine's correctness claim, so it gets the same
treatment as any other critical code: cross-validation of the native test
statistics against scipy (when importable), detection-power checks (it must
*reject* genuinely different distributions), and error-path coverage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.equivalence import (
    EquivalenceReport,
    StatTestResult,
    compare_samples,
    confidence_band_overlap,
    ks_2samp,
    mann_whitney_u,
)

scipy_stats = pytest.importorskip("scipy.stats", reason="scipy cross-check")


def samples(seed, loc_b=0.0, n=40):
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0, n), rng.normal(loc_b, 1.0, n)


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("shift", [0.0, 0.7, 2.0])
    def test_ks_matches_scipy(self, seed, shift):
        a, b = samples(seed, shift)
        ours = ks_2samp(a, b)
        ref = scipy_stats.ks_2samp(a, b, method="asymp")
        assert ours.statistic == pytest.approx(ref.statistic, abs=1e-12)
        # Stephens' correction vs scipy's asymptotic formula: a few percent
        assert ours.pvalue == pytest.approx(ref.pvalue, abs=0.05)
        # and agreement is airtight where it matters: at the decision bar
        for alpha in (0.01, 0.05):
            if min(ours.pvalue, ref.pvalue) > 2 * alpha or (
                max(ours.pvalue, ref.pvalue) < alpha / 2
            ):
                assert (ours.pvalue > alpha) == (ref.pvalue > alpha)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("shift", [0.0, 0.7, 2.0])
    def test_mwu_matches_scipy(self, seed, shift):
        a, b = samples(seed, shift)
        ours = mann_whitney_u(a, b)
        ref = scipy_stats.mannwhitneyu(
            a, b, alternative="two-sided", method="asymptotic"
        )
        assert ours.statistic == pytest.approx(
            max(ref.statistic, a.size * b.size - ref.statistic), abs=1e-9
        )
        assert ours.pvalue == pytest.approx(ref.pvalue, rel=1e-6, abs=1e-9)

    def test_mwu_ties_match_scipy(self):
        rng = np.random.default_rng(7)
        a = rng.integers(0, 4, 30).astype(float)  # heavy ties
        b = rng.integers(0, 4, 25).astype(float)
        ours = mann_whitney_u(a, b)
        ref = scipy_stats.mannwhitneyu(
            a, b, alternative="two-sided", method="asymptotic"
        )
        assert ours.pvalue == pytest.approx(ref.pvalue, rel=1e-6, abs=1e-9)


class TestDetectionPower:
    """A gate that can't reject anything gates nothing."""

    def test_rejects_shifted_distribution(self):
        a, b = samples(3, loc_b=1.5, n=60)
        assert ks_2samp(a, b).pvalue < 0.01
        assert mann_whitney_u(a, b).pvalue < 0.01

    def test_accepts_identical_process(self):
        a, b = samples(9, loc_b=0.0, n=60)
        assert ks_2samp(a, b).pvalue > 0.01
        assert mann_whitney_u(a, b).pvalue > 0.01

    def test_identical_samples_pvalue_one(self):
        a = np.arange(10, dtype=float)
        assert mann_whitney_u(a, a.copy()).pvalue == pytest.approx(1.0, abs=0.01)
        assert ks_2samp(a, a.copy()).pvalue == pytest.approx(1.0, abs=1e-9)

    def test_constant_samples_are_equivalent(self):
        a = np.ones(10)
        assert mann_whitney_u(a, a.copy()).pvalue == 1.0


class TestBandOverlap:
    def test_identical_ensembles_fully_overlap(self):
        rng = np.random.default_rng(0)
        curves = rng.random((8, 12))
        assert confidence_band_overlap(curves, curves.copy()) == 1.0

    def test_disjoint_ensembles_do_not_overlap(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.2, 0.01, (8, 12))
        b = rng.normal(0.8, 0.01, (8, 12))
        assert confidence_band_overlap(a, b) == 0.0

    def test_generation_mismatch_raises(self):
        with pytest.raises(ValueError, match="generation counts differ"):
            confidence_band_overlap(np.zeros((3, 4)), np.zeros((3, 5)))

    def test_needs_matrices(self):
        with pytest.raises(ValueError, match="matrices"):
            confidence_band_overlap(np.zeros(4), np.zeros(4))


class TestReportAndValidation:
    def test_compare_samples_verdict_and_failures(self):
        rng = np.random.default_rng(5)
        same = {"m": rng.normal(size=30)}
        other = {"m": rng.normal(size=30)}
        ok = compare_samples(same, other)
        assert isinstance(ok, EquivalenceReport)
        assert ok.equivalent and ok.failures() == []
        shifted = {"m": rng.normal(3.0, 1.0, 30)}
        bad = compare_samples(same, shifted)
        assert not bad.equivalent
        assert any("m/" in f for f in bad.failures())
        payload = bad.to_dict()
        assert payload["equivalent"] is False
        assert payload["tests"]["m"][0]["name"] == "ks_2samp"

    def test_band_overlap_gate_in_report(self):
        rng = np.random.default_rng(6)
        s = {"m": rng.normal(size=20)}
        t = {"m": rng.normal(size=20)}
        a = rng.normal(0.2, 0.01, (8, 6))
        b = rng.normal(0.8, 0.01, (8, 6))
        report = compare_samples(s, t, curves_a=a, curves_b=b)
        assert not report.equivalent
        assert any("overlap" in f for f in report.failures())

    def test_metric_mismatch_raises(self):
        with pytest.raises(ValueError, match="metric sets differ"):
            compare_samples({"a": [1.0, 2.0]}, {"b": [1.0, 2.0]})

    def test_one_sided_curves_raise(self):
        s = {"m": [1.0, 2.0, 3.0]}
        with pytest.raises(ValueError, match="both engines or neither"):
            compare_samples(s, s, curves_a=np.zeros((2, 3)))

    def test_tiny_samples_raise(self):
        with pytest.raises(ValueError, match="at least 2"):
            ks_2samp([1.0], [1.0, 2.0])

    def test_non_finite_raises(self):
        with pytest.raises(ValueError, match="non-finite"):
            mann_whitney_u([1.0, np.nan, 2.0], [1.0, 2.0])

    def test_result_serialises(self):
        result = StatTestResult("ks_2samp", 0.25, 0.9)
        assert result.to_dict() == {
            "name": "ks_2samp",
            "statistic": 0.25,
            "pvalue": 0.9,
        }

"""Unit tests for the payoff tables (§4.2, Fig. 2a reconstruction)."""

from __future__ import annotations

import pytest

from repro.core.payoff import PayoffConfig


class TestDefaults:
    def test_source_payoffs(self):
        p = PayoffConfig()
        assert p.source_success == 5.0
        assert p.source_failure == 0.0

    def test_reconstructed_intermediate_tables(self):
        p = PayoffConfig()
        assert p.forward_by_trust == (0.5, 1.0, 2.0, 3.0)
        assert p.discard_by_trust == (3.0, 2.0, 1.0, 0.5)

    def test_rows_use_the_figures_multiset(self):
        """Both rows of Fig. 2a contain exactly {0.5, 1, 2, 3}."""
        p = PayoffConfig()
        assert sorted(p.forward_by_trust) == [0.5, 1.0, 2.0, 3.0]
        assert sorted(p.discard_by_trust) == [0.5, 1.0, 2.0, 3.0]

    def test_forward_monotone_increasing_in_trust(self):
        p = PayoffConfig()
        assert list(p.forward_by_trust) == sorted(p.forward_by_trust)

    def test_discard_monotone_decreasing_in_trust(self):
        p = PayoffConfig()
        assert list(p.discard_by_trust) == sorted(p.discard_by_trust, reverse=True)

    def test_default_trust_is_1(self):
        assert PayoffConfig().default_trust == 1


class TestLookups:
    def test_source_payoff(self):
        p = PayoffConfig()
        assert p.source_payoff(True) == 5.0
        assert p.source_payoff(False) == 0.0

    @pytest.mark.parametrize("trust", range(4))
    def test_intermediate_forward(self, trust):
        p = PayoffConfig()
        assert p.intermediate_payoff(True, trust) == p.forward_by_trust[trust]

    @pytest.mark.parametrize("trust", range(4))
    def test_intermediate_discard(self, trust):
        p = PayoffConfig()
        assert p.intermediate_payoff(False, trust) == p.discard_by_trust[trust]

    def test_unknown_source_uses_default_trust(self):
        p = PayoffConfig()
        assert p.intermediate_payoff(True, None) == p.forward_by_trust[1]
        assert p.intermediate_payoff(False, None) == p.discard_by_trust[1]

    def test_bad_trust_rejected(self):
        with pytest.raises(ValueError):
            PayoffConfig().intermediate_payoff(True, 4)

    def test_max_payoff(self):
        assert PayoffConfig().max_payoff == 5.0
        assert PayoffConfig().max_intermediate_payoff == 3.0


class TestValidation:
    def test_wrong_row_length(self):
        with pytest.raises(ValueError):
            PayoffConfig(forward_by_trust=(1.0, 2.0))

    def test_bad_default_trust(self):
        with pytest.raises(ValueError):
            PayoffConfig(default_trust=4)

    def test_frozen(self):
        with pytest.raises(Exception):
            PayoffConfig().source_success = 10  # type: ignore[misc]


class TestWithoutReputation:
    def test_discard_always_beats_forward(self):
        """§4.2: without enforcement, selfishness always pays more."""
        p = PayoffConfig.without_reputation()
        for trust in range(4):
            assert p.intermediate_payoff(False, trust) > p.intermediate_payoff(
                True, trust
            )

"""Unit tests for Table 6 request-fraction extraction."""

from __future__ import annotations

import pytest

from repro.analysis.requests import request_fractions
from repro.game.stats import RequestCounters


class TestRequestFractions:
    def test_fractions(self):
        c = RequestCounters(
            accepted_by_nn=70,
            accepted_by_csn=7,
            rejected_by_nn=3,
            rejected_by_csn=20,
        )
        f = request_fractions(c)
        assert f["accepted"] == pytest.approx(0.77)
        assert f["rejected_by_np"] == pytest.approx(0.03)
        assert f["rejected_by_csn"] == pytest.approx(0.20)
        assert sum(f.values()) == pytest.approx(1.0)

    def test_empty(self):
        f = request_fractions(RequestCounters())
        assert f == {"accepted": 0.0, "rejected_by_np": 0.0, "rejected_by_csn": 0.0}

"""Tests for the declarative scenario layer (repro.scenarios).

Pins the three properties the serving stack depends on:

* every committed ``scenarios/*.yaml`` loads, resolves, and round-trips
  stably (load → resolve → re-serialize → reload gives the same payload
  and the same ``config_hash``);
* a scenario file and the equivalent CLI-flag invocation resolve to the
  same config — same hash, bit-identical runs;
* the schema rejects everything outside the exact-key contract.
"""

from __future__ import annotations

import copy
from pathlib import Path

import pytest
import yaml

from repro.scenarios import (
    apply_overrides,
    build_scenario_payload,
    dump_scenario,
    list_scenarios,
    load_scenario,
    resolve_scenario,
)
from repro.utils.validation import validate_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
SCENARIOS_DIR = REPO_ROOT / "scenarios"
LIBRARY = list_scenarios(SCENARIOS_DIR)


def minimal_payload(**changes) -> dict:
    payload = {
        "scenario_version": 1,
        "name": "t",
        "description": "",
        "case": "case1",
        "scale": "smoke",
        "overrides": {},
        "run": {},
    }
    payload.update(changes)
    return payload


class TestCommittedLibrary:
    def test_library_is_nonempty(self):
        assert len(LIBRARY) >= 10

    @pytest.mark.parametrize("path", LIBRARY, ids=lambda p: p.stem)
    def test_round_trip_is_stable(self, path):
        payload = load_scenario(path)
        resolved = resolve_scenario(payload)
        # re-serialize the normalized payload and reload: same payload,
        # same resolved hash — the DSL has one canonical form
        text = dump_scenario(resolved.to_payload())
        reloaded = validate_scenario(yaml.safe_load(text), name=str(path))
        assert reloaded == resolved.to_payload()
        assert resolve_scenario(reloaded).config_hash() == resolved.config_hash()

    @pytest.mark.parametrize("path", LIBRARY, ids=lambda p: p.stem)
    def test_resolution_is_deterministic(self, path):
        first = resolve_scenario(load_scenario(path))
        second = resolve_scenario(load_scenario(path))
        assert first.describe() == second.describe()
        assert first.config_hash() == second.config_hash()

    def test_library_covers_every_case(self):
        from repro.experiments.cases import ALL_CASES

        covered = {load_scenario(p)["case"] for p in LIBRARY}
        assert covered >= set(ALL_CASES)

    def test_library_names_are_unique(self):
        names = [load_scenario(p)["name"] for p in LIBRARY]
        assert len(names) == len(set(names))

    def test_run_block_never_changes_the_hash(self):
        # case3_checkpointed differs from case3 only in execution options
        plain = resolve_scenario(load_scenario(SCENARIOS_DIR / "case3.yaml"))
        ckpt = resolve_scenario(
            load_scenario(SCENARIOS_DIR / "case3_checkpointed.yaml")
        )
        assert plain.config_hash() == ckpt.config_hash()
        assert ckpt.shards == 2
        assert ckpt.resume is True
        assert ckpt.checkpoint_dir == Path("results/checkpoints")


class TestFlagEquivalence:
    def test_fig4_smoke_matches_run_case_flags(self):
        """The acceptance pair: scenarios/fig4_smoke.yaml versus
        `run-case case1 --scale smoke` (whose flag defaults are
        seed 2007 / engine fast)."""
        from_file = resolve_scenario(
            load_scenario(SCENARIOS_DIR / "fig4_smoke.yaml")
        )
        from_flags = resolve_scenario(
            build_scenario_payload(
                "case1", "smoke", overrides={"seed": 2007, "engine": "fast"}
            )
        )
        assert from_file.describe() == from_flags.describe()
        assert from_file.config_hash() == from_flags.config_hash()

    def test_mobility_flags_match_overrides(self):
        """Scenario overrides apply in the same order run-case flags did,
        including the speed -> (min, max, mean) expansion."""
        resolved = resolve_scenario(
            build_scenario_payload(
                "case1",
                "smoke",
                overrides={
                    "mobility": "waypoint",
                    "speed": 0.04,
                    "pause": 2.0,
                    "rounds": 5,
                },
            )
        )
        mobility = resolved.config.sim.mobility
        assert resolved.config.case.mobility == "waypoint"
        assert mobility.model == "waypoint"
        assert mobility.mean_speed == pytest.approx(0.04)
        assert mobility.speed_min == pytest.approx(0.02)
        assert mobility.speed_max == pytest.approx(0.06)
        assert mobility.pause_time == pytest.approx(2.0)
        assert resolved.config.sim.rounds == 5

    def test_mobility_none_disables_mobile_case(self):
        resolved = resolve_scenario(
            build_scenario_payload(
                "mobile_waypoint", "smoke", overrides={"mobility": "none"}
            )
        )
        assert resolved.config.sim.mobility.model == "none"

    def test_route_cache_override(self):
        resolved = resolve_scenario(
            load_scenario(SCENARIOS_DIR / "mobile_waypoint_approx.yaml")
        )
        assert resolved.config.sim.mobility.route_cache == "approx"
        assert resolved.config.sim.mobility.drift_budget == 240

    def test_telemetry_never_changes_the_hash(self):
        base = build_scenario_payload("case1", "smoke")
        instrumented = build_scenario_payload(
            "case1", "smoke", overrides={"telemetry": True}
        )
        a, b = resolve_scenario(base), resolve_scenario(instrumented)
        assert a.config_hash() == b.config_hash()
        assert b.config.telemetry.enabled


class TestApplyOverrides:
    def test_explicit_flags_win_and_none_defers(self):
        base = build_scenario_payload(
            "case1", "smoke", overrides={"seed": 11, "generations": 2}
        )
        merged = apply_overrides(
            base, overrides={"seed": 99, "generations": None, "rounds": 4}
        )
        assert merged["overrides"]["seed"] == 99
        assert merged["overrides"]["generations"] == 2
        assert merged["overrides"]["rounds"] == 4

    def test_run_block_merges(self):
        base = build_scenario_payload("case1", "smoke", run={"shards": 2})
        merged = apply_overrides(base, run={"processes": 1, "shards": None})
        assert merged["run"] == {"processes": 1, "shards": 2}

    def test_merged_payload_is_revalidated(self):
        base = build_scenario_payload("case1", "smoke")
        with pytest.raises(ValueError, match="require 'mobility'"):
            apply_overrides(base, overrides={"speed": 0.1})

    def test_base_payload_is_not_mutated(self):
        base = build_scenario_payload("case1", "smoke", overrides={"seed": 1})
        snapshot = copy.deepcopy(base)
        apply_overrides(base, overrides={"seed": 2}, run={"shards": 3})
        assert base == snapshot


class TestSchemaRejections:
    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda p: p.pop("run"), "keys mismatch"),
            (lambda p: p.update(extra=1), "keys mismatch"),
            (lambda p: p.update(scenario_version=2), "'scenario_version'"),
            (lambda p: p.update(name=""), "'name'"),
            (lambda p: p.update(name="bad name!"), "A-Za-z0-9"),
            (lambda p: p.update(overrides={"nope": 1}), "unknown override"),
            (lambda p: p.update(overrides={"generations": 0}), "generations"),
            (lambda p: p.update(overrides={"speed": 0.1}), "require 'mobility'"),
            (
                lambda p: p.update(overrides={"drift_budget": 8}),
                "route_cache",
            ),
            (
                lambda p: p.update(overrides={"telemetry": "yes"}),
                "telemetry",
            ),
            (lambda p: p.update(run={"shards": 0}), "shards"),
            (lambda p: p.update(run={"resume": "yes"}), "resume"),
            (lambda p: p.update(run={"checkpoint_dir": ""}), "checkpoint_dir"),
        ],
    )
    def test_contract_violations_raise(self, mutate, match):
        payload = minimal_payload()
        mutate(payload)
        with pytest.raises(ValueError, match=match):
            validate_scenario(payload)

    def test_unknown_case_fails_at_resolve(self):
        with pytest.raises(ValueError, match="unknown case"):
            resolve_scenario(minimal_payload(case="case99"))

    def test_unknown_scale_fails_at_resolve(self):
        with pytest.raises(ValueError, match="unknown scale"):
            resolve_scenario(minimal_payload(scale="galactic"))

    def test_unknown_engine_fails_at_resolve(self):
        with pytest.raises(ValueError, match="engine"):
            resolve_scenario(
                minimal_payload(overrides={"engine": "antimatter"})
            )

    def test_unknown_mobility_fails_at_resolve(self):
        with pytest.raises(ValueError, match="mobility"):
            resolve_scenario(minimal_payload(overrides={"mobility": "warp"}))


class TestLoader:
    def test_rejects_unknown_suffix(self, tmp_path):
        path = tmp_path / "s.txt"
        path.write_text("{}")
        with pytest.raises(ValueError, match="must end in"):
            load_scenario(path)

    def test_rejects_unparseable_yaml(self, tmp_path):
        path = tmp_path / "s.yaml"
        path.write_text("{unclosed: [")
        with pytest.raises(ValueError, match="not a valid scenario"):
            load_scenario(path)

    def test_json_scenarios_load_too(self, tmp_path):
        import json

        path = tmp_path / "s.json"
        path.write_text(json.dumps(minimal_payload()))
        assert load_scenario(path)["case"] == "case1"

    def test_list_scenarios_missing_dir_is_empty(self, tmp_path):
        assert list_scenarios(tmp_path / "nope") == []

    def test_dump_writes_when_given_path(self, tmp_path):
        target = tmp_path / "out.yaml"
        dump_scenario(minimal_payload(), target)
        assert load_scenario(target)["name"] == "t"

"""Unit and property tests for first-hand reputation records (§3.1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.reputation.records import (
    DEFAULT_UNKNOWN_RATE,
    ReputationRecord,
    ReputationTable,
)


class TestReputationRecord:
    def test_rate(self):
        assert ReputationRecord(ps=4, pf=3).rate == 0.75

    def test_rate_undefined_without_observations(self):
        with pytest.raises(ValueError):
            _ = ReputationRecord().rate


class TestRecording:
    def test_forwarded_observation(self):
        t = ReputationTable()
        t.record(5, True)
        assert t.get(5).ps == 1 and t.get(5).pf == 1

    def test_dropped_observation(self):
        t = ReputationTable()
        t.record(5, False)
        assert t.get(5).ps == 1 and t.get(5).pf == 0

    def test_forwarding_rate(self):
        t = ReputationTable()
        t.record(5, True)
        t.record(5, True)
        t.record(5, False)
        assert t.forwarding_rate(5) == pytest.approx(2 / 3)

    def test_unknown_subject_default(self):
        t = ReputationTable()
        assert t.forwarding_rate(9, default=DEFAULT_UNKNOWN_RATE) == 0.5

    def test_unknown_subject_raises_without_default(self):
        with pytest.raises(KeyError):
            ReputationTable().forwarding_rate(9)

    def test_knows(self):
        t = ReputationTable()
        assert not t.knows(1)
        t.record(1, False)
        assert t.knows(1)

    def test_clear(self):
        t = ReputationTable()
        t.record(1, True)
        t.clear()
        assert not t.knows(1)
        assert t.n_known == 0
        assert t.pf_total == 0


class TestAggregates:
    def test_average_forwarded(self):
        t = ReputationTable()
        for _ in range(3):
            t.record(1, True)
        t.record(2, True)
        t.record(2, False)
        # pf: node1 = 3, node2 = 1 -> av = 2
        assert t.average_forwarded() == 2.0

    def test_average_empty_table(self):
        assert ReputationTable().average_forwarded() == 0.0

    def test_forwarded_count_unknown_is_zero(self):
        assert ReputationTable().forwarded_count(7) == 0

    def test_n_known_and_subjects(self):
        t = ReputationTable()
        t.record(1, True)
        t.record(2, False)
        assert t.n_known == 2
        assert set(t.subjects()) == {1, 2}

    def test_snapshot(self):
        t = ReputationTable()
        t.record(1, True)
        t.record(1, False)
        assert t.snapshot() == {1: (2, 1)}


class TestMergeCounts:
    def test_merges_external_evidence(self):
        t = ReputationTable()
        t.merge_counts(3, ps=4, pf=2)
        assert t.forwarding_rate(3) == 0.5
        assert t.pf_total == 2

    def test_zero_ps_noop(self):
        t = ReputationTable()
        t.merge_counts(3, ps=0, pf=0)
        assert not t.knows(3)

    @pytest.mark.parametrize("ps,pf", [(-1, 0), (1, -1), (1, 2)])
    def test_invalid_counts_rejected(self, ps, pf):
        with pytest.raises(ValueError):
            ReputationTable().merge_counts(3, ps=ps, pf=pf)


@st.composite
def observation_streams(draw):
    """Random streams of (subject, forwarded) observations."""
    n = draw(st.integers(0, 80))
    return [
        (draw(st.integers(0, 6)), draw(st.booleans())) for _ in range(n)
    ]


class TestInvariants:
    @given(observation_streams())
    def test_pf_never_exceeds_ps(self, stream):
        t = ReputationTable()
        for subject, forwarded in stream:
            t.record(subject, forwarded)
        for _, (ps, pf) in t.snapshot().items():
            assert 0 <= pf <= ps

    @given(observation_streams())
    def test_pf_total_consistent(self, stream):
        t = ReputationTable()
        for subject, forwarded in stream:
            t.record(subject, forwarded)
        assert t.pf_total == sum(pf for _, pf in t.snapshot().values())

    @given(observation_streams())
    def test_average_is_mean_of_pf(self, stream):
        t = ReputationTable()
        for subject, forwarded in stream:
            t.record(subject, forwarded)
        snap = t.snapshot()
        if snap:
            expected = sum(pf for _, pf in snap.values()) / len(snap)
            assert t.average_forwarded() == pytest.approx(expected)

    @given(observation_streams())
    def test_rate_in_unit_interval(self, stream):
        t = ReputationTable()
        for subject, forwarded in stream:
            t.record(subject, forwarded)
        for subject in t.subjects():
            assert 0.0 <= t.forwarding_rate(subject) <= 1.0

"""The public API surface: imports, __all__ integrity, docstring example."""

from __future__ import annotations

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.reputation",
    "repro.paths",
    "repro.game",
    "repro.tournament",
    "repro.ga",
    "repro.sim",
    "repro.ipdrp",
    "repro.network",
    "repro.mobility",
    "repro.analysis",
    "repro.experiments",
    "repro.parallel",
    "repro.utils",
    "repro.config",
    "repro.cli",
]


class TestImports:
    @pytest.mark.parametrize("module", SUBPACKAGES)
    def test_subpackage_imports(self, module):
        importlib.import_module(module)

    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name}"

    @pytest.mark.parametrize(
        "module",
        ["repro.core", "repro.reputation", "repro.paths", "repro.game",
         "repro.tournament", "repro.ga", "repro.experiments", "repro.analysis",
         "repro.parallel", "repro.ipdrp", "repro.network", "repro.mobility",
         "repro.utils"],
    )
    def test_subpackage_all_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ lists {name}"


class TestDocstringExample:
    def test_quickstart_doctest(self):
        """The module docstring example must actually run."""
        from repro import ExperimentConfig, run_experiment

        config = ExperimentConfig.for_case("case1", scale="smoke")
        result = run_experiment(config, processes=1)
        assert 0.0 <= result.final_cooperation()[0] <= 1.0

"""Unit tests for the single-game engine (§4.1–4.2, §3.1 semantics)."""

from __future__ import annotations

import pytest

from repro.core.node import (
    AlwaysDropPlayer,
    AlwaysForwardPlayer,
    ConstantlySelfishPlayer,
    NormalPlayer,
)
from repro.core.payoff import PayoffConfig
from repro.core.strategy import Strategy
from repro.game.engine import play_game
from repro.game.stats import TournamentStats
from repro.paths.oracle import GameSetup

from tests.conftest import make_players


def run(players, path, trust_table, activity, payoffs, stats=None, source=0, dest=99):
    players.setdefault(dest, AlwaysForwardPlayer(dest))
    setup = GameSetup(source=source, destination=dest, paths=(tuple(path),))
    return play_game(
        players, setup, 0, trust_table, activity, payoffs, stats=stats
    )


class TestSuccessfulGame:
    def test_all_forward_succeeds(self, trust_table, activity, payoffs):
        players = make_players(4)
        result = run(players, (1, 2, 3), trust_table, activity, payoffs)
        assert result.success
        assert result.drop_index is None
        assert result.dropper is None
        assert len(result.decisions) == 3

    def test_source_paid_success(self, trust_table, activity, payoffs):
        players = make_players(2)
        run(players, (1,), trust_table, activity, payoffs)
        assert players[0].payoffs.send_payoff == 5.0
        assert players[0].payoffs.n_sent == 1

    def test_everyone_updates_about_all_intermediates(
        self, trust_table, activity, payoffs
    ):
        players = make_players(4)
        run(players, (1, 2, 3), trust_table, activity, payoffs)
        # source knows all three intermediates
        assert players[0].reputation.snapshot() == {
            1: (1, 1),
            2: (1, 1),
            3: (1, 1),
        }
        # each intermediate knows the two others, never itself or the source
        assert players[1].reputation.snapshot() == {2: (1, 1), 3: (1, 1)}
        assert players[2].reputation.snapshot() == {1: (1, 1), 3: (1, 1)}
        assert players[3].reputation.snapshot() == {1: (1, 1), 2: (1, 1)}

    def test_unknown_source_payoff_uses_default_trust(
        self, trust_table, activity, payoffs
    ):
        players = make_players(2)
        run(players, (1,), trust_table, activity, payoffs)
        assert players[1].payoffs.forward_payoff == payoffs.forward_by_trust[1]


class TestFailedGame:
    def test_first_hop_drop(self, trust_table, activity, payoffs):
        players = {
            0: AlwaysForwardPlayer(0),
            1: AlwaysDropPlayer(1),
            2: AlwaysForwardPlayer(2),
        }
        result = run(players, (1, 2), trust_table, activity, payoffs)
        assert not result.success
        assert result.drop_index == 0
        assert result.dropper == 1
        assert len(result.decisions) == 1  # node 2 never received the packet

    def test_nodes_after_drop_get_nothing(self, trust_table, activity, payoffs):
        players = {
            0: AlwaysForwardPlayer(0),
            1: AlwaysDropPlayer(1),
            2: AlwaysForwardPlayer(2),
        }
        run(players, (1, 2), trust_table, activity, payoffs)
        assert players[2].payoffs.n_events == 0
        assert players[2].reputation.snapshot() == {}

    def test_source_paid_failure(self, trust_table, activity, payoffs):
        players = {0: AlwaysForwardPlayer(0), 1: AlwaysDropPlayer(1)}
        run(players, (1,), trust_table, activity, payoffs)
        assert players[0].payoffs.send_payoff == 0.0
        assert players[0].payoffs.n_sent == 1

    def test_dropper_paid_for_discard(self, trust_table, activity, payoffs):
        players = {0: AlwaysForwardPlayer(0), 1: AlwaysDropPlayer(1)}
        run(players, (1,), trust_table, activity, payoffs)
        assert players[1].payoffs.discard_payoff == payoffs.discard_by_trust[1]
        assert players[1].payoffs.n_discarded == 1

    def test_mid_path_drop_update_pattern(self, trust_table, activity, payoffs):
        """Fig. 1a generalised: only source + upstream forwarders update."""
        players = {
            0: AlwaysForwardPlayer(0),
            1: AlwaysForwardPlayer(1),
            2: AlwaysDropPlayer(2),
            3: AlwaysForwardPlayer(3),
        }
        run(players, (1, 2, 3), trust_table, activity, payoffs)
        assert players[0].reputation.snapshot() == {1: (1, 1), 2: (1, 0)}
        assert players[1].reputation.snapshot() == {2: (1, 0)}
        assert players[2].reputation.snapshot() == {}  # the dropper
        assert players[3].reputation.snapshot() == {}  # downstream


class TestStats:
    def test_requests_counted_until_drop(self, trust_table, activity, payoffs):
        players = {
            0: AlwaysForwardPlayer(0),
            1: AlwaysForwardPlayer(1),
            2: ConstantlySelfishPlayer(2),
            3: AlwaysForwardPlayer(3),
        }
        stats = TournamentStats()
        run(players, (1, 2, 3), trust_table, activity, payoffs, stats=stats)
        c = stats.requests_from_nn
        assert c.total == 2  # node 3 was never asked
        assert c.accepted_by_nn == 1
        assert c.rejected_by_csn == 1

    def test_requests_from_selfish_source(self, trust_table, activity, payoffs):
        players = {0: ConstantlySelfishPlayer(0), 1: AlwaysForwardPlayer(1)}
        stats = TournamentStats()
        run(players, (1,), trust_table, activity, payoffs, stats=stats)
        assert stats.requests_from_csn.accepted_by_nn == 1
        assert stats.csn_originated == 1
        assert stats.csn_delivered == 1

    def test_game_outcome_counted(self, trust_table, activity, payoffs):
        players = make_players(2)
        stats = TournamentStats()
        run(players, (1,), trust_table, activity, payoffs, stats=stats)
        assert stats.nn_originated == 1
        assert stats.nn_delivered == 1


class TestDecisionDrivenByReputation:
    def test_trust_gates_forwarding(self, trust_table, activity, payoffs):
        """A strategy forwarding only at trust >= 2 drops a low-trust source."""
        strategy = Strategy.from_string("000 000 111 111 1")
        decider = NormalPlayer(1, strategy)
        # source 0 has forwarding rate 0.2 -> trust 0
        decider.reputation.record(0, True)
        for _ in range(4):
            decider.reputation.record(0, False)
        players = {0: AlwaysForwardPlayer(0), 1: decider}
        result = run(players, (1,), trust_table, activity, payoffs)
        assert not result.success
        assert result.decisions[0].trust == 0

    def test_reputation_can_be_frozen(self, trust_table, activity, payoffs):
        players = make_players(3)
        setup = GameSetup(source=0, destination=9, paths=((1, 2),))
        players[9] = AlwaysForwardPlayer(9)
        play_game(
            players, setup, 0, trust_table, activity, payoffs, update_reputation=False
        )
        assert players[0].reputation.snapshot() == {}

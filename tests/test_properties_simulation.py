"""Cross-module property tests: whole-simulation invariants under random
configurations (hypothesis drives the scenario shape, numpy the content)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategy import Strategy
from repro.game.stats import TournamentStats
from repro.paths.distributions import LONGER_PATHS, SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.sim.fast import FastEngine
from repro.tournament.environment import TournamentEnvironment
from repro.tournament.evaluation import evaluate_generation

scenario = st.fixed_dictionaries(
    {
        "n_pop": st.integers(8, 20),
        "n_csn": st.integers(0, 5),
        "rounds": st.integers(1, 8),
        "seed": st.integers(0, 2**31 - 1),
        "longer": st.booleans(),
    }
)


def run_scenario(params) -> tuple[FastEngine, TournamentStats, int]:
    rng = np.random.default_rng(params["seed"])
    engine = FastEngine(params["n_pop"], params["n_csn"])
    engine.set_strategies(
        [Strategy.random(rng) for _ in range(params["n_pop"])]
    )
    hop_dist = LONGER_PATHS if params["longer"] else SHORTER_PATHS
    oracle = RandomPathOracle(rng, hop_dist)
    participants = list(range(params["n_pop"])) + engine.selfish_ids(
        params["n_csn"]
    )
    stats = TournamentStats()
    engine.run_tournament(participants, params["rounds"], oracle, stats, None, None)
    return engine, stats, len(participants)


@settings(max_examples=25, deadline=None)
@given(scenario)
def test_packet_conservation(params):
    """Every participant sources exactly once per round; every packet is
    either delivered or dropped."""
    _, stats, n_participants = run_scenario(params)
    total = stats.nn_originated + stats.csn_originated
    assert total == n_participants * params["rounds"]
    assert stats.nn_delivered <= stats.nn_originated
    assert stats.csn_delivered <= stats.csn_originated


@settings(max_examples=25, deadline=None)
@given(scenario)
def test_request_accounting(params):
    """Accepted + rejected == total requests, for both source classes."""
    _, stats, _ = run_scenario(params)
    for counters in (stats.requests_from_nn, stats.requests_from_csn):
        assert (
            counters.accepted + counters.rejected_by_nn + counters.rejected_by_csn
            == counters.total
        )


@settings(max_examples=25, deadline=None)
@given(scenario)
def test_path_choices_match_games(params):
    _, stats, n_participants = run_scenario(params)
    assert stats.nn_paths_chosen == stats.nn_originated
    assert stats.csn_paths_chosen == stats.csn_originated


@settings(max_examples=25, deadline=None)
@given(scenario)
def test_reputation_matrix_invariants(params):
    """pf <= ps cell-wise; diagonal empty; CSN never observed forwarding."""
    engine, _, _ = run_scenario(params)
    matrix = engine.payoff_matrix()
    ps, pf = matrix[:, :, 0], matrix[:, :, 1]
    assert (pf <= ps).all()
    assert (np.diag(ps) == 0).all()
    csn_cols = ps[:, params["n_pop"] :]
    csn_fwd = pf[:, params["n_pop"] :]
    assert (csn_fwd == 0).all()  # CSN never forward
    del csn_cols


@settings(max_examples=25, deadline=None)
@given(scenario)
def test_fitness_bounded_by_max_payoff(params):
    engine, _, _ = run_scenario(params)
    fitness = engine.fitness()
    assert (fitness >= 0.0).all()
    assert (fitness <= engine.payoffs.max_payoff).all()


@settings(max_examples=10, deadline=None)
@given(scenario, st.integers(1, 2))
def test_full_evaluation_invariants(params, plays):
    """evaluate_generation over a random environment keeps all invariants."""
    rng = np.random.default_rng(params["seed"])
    n_pop = max(params["n_pop"], 10)
    engine = FastEngine(n_pop, params["n_csn"])
    engine.set_strategies([Strategy.random(rng) for _ in range(n_pop)])
    env = TournamentEnvironment(
        "P", min(8, n_pop), min(params["n_csn"], min(8, n_pop) - 3)
    )
    oracle = RandomPathOracle(rng, SHORTER_PATHS)
    result = evaluate_generation(
        engine,
        [env],
        rounds=params["rounds"],
        plays_per_environment=plays,
        oracle=oracle,
        rng=rng,
    )
    assert 0.0 <= result.cooperation_level <= 1.0
    assert result.fitness.shape == (n_pop,)
    assert (result.fitness >= 0).all()
    # every population member played at least `plays` tournaments
    stats = result.per_environment["P"]
    assert stats.nn_originated >= n_pop * plays * params["rounds"] // 2

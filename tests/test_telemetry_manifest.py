"""Run-manifest contract tests: schema validation, hashing, files, rendering.

The manifest is the artefact a ``--telemetry`` run leaves behind and the
surface ``repro stats`` consumes, so its exact-key schema and the
config-hash stability rules (telemetry settings excluded) are pinned here.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.telemetry import (
    TelemetryConfig,
    build_run_manifest,
    config_hash,
    render_manifest,
    telemetry_session,
    write_run_manifest,
)
from repro.utils.validation import RUN_MANIFEST_KEYS, validate_run_manifest


@pytest.fixture()
def config_summary() -> dict:
    return ExperimentConfig.for_case("case1", scale="smoke").describe()


def sample_telemetry() -> dict:
    with telemetry_session(TelemetryConfig(enabled=True)) as tel:
        tel.count("engine.games", 2400)
        tel.set_gauge("ga.diversity", 0.93)
        tel.observe("route.drift_age", 3, bounds=(1, 2, 4))
        tel.timer_add("ga.selection_s", 0.25)
        tel.timer_add("ga.selection_s", 0.75)
        tel.event("span", span="generation", dur_s=0.5)
        export = tel.export()
    export["wall_s"] = 1.5
    return export


class TestConfigHash:
    def test_stable_across_telemetry_settings(self, config_summary):
        config = ExperimentConfig.for_case("case1", scale="smoke")
        instrumented = config.with_(
            telemetry=TelemetryConfig(enabled=True)
        ).describe()
        assert config_hash(config_summary) == config_hash(instrumented)

    def test_sensitive_to_simulation_settings(self, config_summary):
        other = ExperimentConfig.for_case("case2", scale="smoke").describe()
        assert config_hash(config_summary) != config_hash(other)

    def test_deterministic(self, config_summary):
        assert config_hash(config_summary) == config_hash(config_summary)


class TestBuildManifest:
    def test_exact_keys(self, config_summary):
        manifest = build_run_manifest("t", config_summary, {}, wall_s=1.0)
        assert set(manifest) == set(RUN_MANIFEST_KEYS)

    def test_run_summary_fields(self, config_summary):
        manifest = build_run_manifest("t", config_summary, {}, wall_s=1.0)
        run = manifest["run"]
        assert run["case"] == "case1"
        assert run["oracle"] == "random"
        assert run["route_cache"] == "none"
        assert run["replications"] >= 1

    def test_mobile_run_summary(self):
        summary = ExperimentConfig.for_case(
            "mobile_waypoint", scale="smoke"
        ).with_route_cache("approx", 8).describe()
        run = build_run_manifest("t", summary, {}, wall_s=0.0)["run"]
        assert run["oracle"].startswith("mobile:")
        assert run["route_cache"] == "approx"
        assert run["drift_budget"] == 8


class TestValidateManifest:
    def good(self, config_summary) -> dict:
        return build_run_manifest("t", config_summary, {"counters": {"g": 1}}, 1.0)

    def test_good_passes(self, config_summary):
        payload = self.good(config_summary)
        assert validate_run_manifest(payload, name="t") == payload

    def test_missing_key_rejected(self, config_summary):
        payload = self.good(config_summary)
        del payload["git_sha"]
        with pytest.raises(ValueError, match="git_sha"):
            validate_run_manifest(payload, name="t")

    def test_extra_key_rejected(self, config_summary):
        payload = self.good(config_summary) | {"extra": 1}
        with pytest.raises(ValueError, match="extra"):
            validate_run_manifest(payload, name="t")

    def test_bool_version_rejected(self, config_summary):
        payload = self.good(config_summary) | {"manifest_version": True}
        with pytest.raises(ValueError, match="manifest_version"):
            validate_run_manifest(payload, name="t")

    def test_unknown_version_rejected(self, config_summary):
        payload = self.good(config_summary) | {"manifest_version": 99}
        with pytest.raises(ValueError, match="manifest_version"):
            validate_run_manifest(payload, name="t")

    def test_negative_wall_rejected(self, config_summary):
        payload = self.good(config_summary) | {"wall_s": -1.0}
        with pytest.raises(ValueError, match="wall_s"):
            validate_run_manifest(payload, name="t")

    def test_non_numeric_metrics_rejected(self, config_summary):
        payload = self.good(config_summary) | {
            "metrics": {"counters": {"g": "lots"}}
        }
        with pytest.raises(ValueError):
            validate_run_manifest(payload, name="t")

    def test_nested_run_mapping_rejected(self, config_summary):
        payload = self.good(config_summary)
        payload = payload | {"run": dict(payload["run"], nested={"a": 1})}
        with pytest.raises(ValueError, match="run"):
            validate_run_manifest(payload, name="t")

    def test_empty_events_file_rejected(self, config_summary):
        payload = self.good(config_summary) | {"events_file": ""}
        with pytest.raises(ValueError, match="events_file"):
            validate_run_manifest(payload, name="t")

    def test_none_events_file_allowed(self, config_summary):
        payload = self.good(config_summary) | {"events_file": None}
        assert validate_run_manifest(payload, name="t")["events_file"] is None


class TestWriteManifest:
    def test_writes_manifest_and_jsonl(self, tmp_path, config_summary):
        path = write_run_manifest(
            tmp_path, "case1_smoke", config_summary, sample_telemetry()
        )
        assert path == tmp_path / "case1_smoke_manifest.json"
        payload = json.loads(path.read_text())
        validate_run_manifest(payload, name="written")
        assert payload["events_file"] == "case1_smoke_metrics.jsonl"
        assert payload["metrics"]["counters"]["engine.games"] == 2400
        assert payload["wall_s"] == 1.5

    def test_jsonl_has_events_then_metric_lines(self, tmp_path, config_summary):
        write_run_manifest(tmp_path, "t", config_summary, sample_telemetry())
        lines = [
            json.loads(line)
            for line in (tmp_path / "t_metrics.jsonl").read_text().splitlines()
        ]
        assert lines[0]["event"] == "span"
        metric_lines = [rec for rec in lines if rec["event"] == "metric"]
        by_name = {rec["name"]: rec for rec in metric_lines}
        assert by_name["engine.games"]["value"] == 2400
        assert by_name["engine.games"]["kind"] == "counter"
        assert by_name["ga.selection_s"]["value"]["count"] == 2

    def test_creates_out_dir(self, tmp_path, config_summary):
        nested = tmp_path / "a" / "b"
        write_run_manifest(nested, "t", config_summary, sample_telemetry())
        assert (nested / "t_manifest.json").exists()


class TestRender:
    def test_render_round_trip(self, tmp_path, config_summary):
        path = write_run_manifest(
            tmp_path, "case1_smoke", config_summary, sample_telemetry()
        )
        text = render_manifest(json.loads(path.read_text()))
        assert "run manifest: case1_smoke" in text
        assert "engine.games" in text and "2,400" in text
        assert "ga.diversity" in text
        assert "ga.selection_s" in text
        assert "route.drift_age" in text

    def test_render_survives_empty_metrics(self, config_summary):
        manifest = build_run_manifest("t", config_summary, {}, wall_s=0.0)
        text = render_manifest(manifest)
        assert "run manifest: t" in text
        assert "counters" not in text

"""Unit tests for the player hierarchy (§4.3 + baselines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.activity import Activity
from repro.core.node import (
    AlwaysDropPlayer,
    AlwaysForwardPlayer,
    ConstantlySelfishPlayer,
    NormalPlayer,
    RandomPlayer,
    ThresholdPlayer,
)
from repro.core.strategy import Strategy
from repro.reputation.activity import ActivityClassifier
from repro.reputation.trust import TrustTable

from tests.conftest import seed_reputation

TRUST = TrustTable()
ACTIVITY = ActivityClassifier()


class TestNormalPlayer:
    def test_unknown_source_uses_bit12(self):
        forward_unknown = NormalPlayer(0, Strategy.from_string("000 000 000 000 1"))
        drop_unknown = NormalPlayer(1, Strategy.from_string("111 111 111 111 0"))
        d1 = forward_unknown.decide_packet(9, TRUST, ACTIVITY)
        d2 = drop_unknown.decide_packet(9, TRUST, ACTIVITY)
        assert d1.forward and not d1.source_known
        assert d1.trust is None and d1.activity is None
        assert not d2.forward

    def test_known_source_resolves_trust_and_activity(self):
        player = NormalPlayer(0, Strategy.all_forward())
        seed_reputation(player, 5, forwarded=19, dropped=1)  # fr = 0.95
        decision = player.decide_packet(5, TRUST, ACTIVITY)
        assert decision.source_known
        assert decision.trust == 3
        assert decision.activity == Activity.MI  # only known node == average

    def test_decision_follows_strategy_bit(self):
        # forward only at (trust 3, MI) = bit 10
        player = NormalPlayer(0, Strategy.from_string("000 000 000 010 0"))
        seed_reputation(player, 5, forwarded=19, dropped=1)
        assert player.decide_packet(5, TRUST, ACTIVITY).forward

    def test_activity_levels_against_other_known_nodes(self):
        player = NormalPlayer(0, Strategy.all_forward())
        seed_reputation(player, 5, forwarded=1, dropped=0)  # source: pf=1
        seed_reputation(player, 6, forwarded=9, dropped=0)  # other: pf=9
        # av = (1 + 9) / 2 = 5; source pf=1 < 4 -> LO
        decision = player.decide_packet(5, TRUST, ACTIVITY)
        assert decision.activity == Activity.LO

    def test_strategy_is_mutable_between_generations(self):
        player = NormalPlayer(0, Strategy.all_drop())
        player.strategy = Strategy.all_forward()
        assert player.decide_packet(1, TRUST, ACTIVITY).forward


class TestConstantlySelfish:
    def test_always_drops(self):
        csn = ConstantlySelfishPlayer(0)
        assert not csn.decide_packet(5, TRUST, ACTIVITY).forward
        seed_reputation(csn, 5, forwarded=10, dropped=0)
        assert not csn.decide_packet(5, TRUST, ACTIVITY).forward

    def test_is_selfish_flag(self):
        assert ConstantlySelfishPlayer(0).is_selfish
        assert not NormalPlayer(0, Strategy.all_forward()).is_selfish
        assert not AlwaysForwardPlayer(0).is_selfish

    def test_decision_still_reports_trust_when_known(self):
        csn = ConstantlySelfishPlayer(0)
        seed_reputation(csn, 5, forwarded=10, dropped=0)
        decision = csn.decide_packet(5, TRUST, ACTIVITY)
        assert decision.trust == 3 and decision.source_known


class TestBaselines:
    def test_always_forward(self):
        p = AlwaysForwardPlayer(0)
        assert p.decide_packet(1, TRUST, ACTIVITY).forward

    def test_always_drop(self):
        p = AlwaysDropPlayer(0)
        assert not p.decide_packet(1, TRUST, ACTIVITY).forward
        assert not p.is_selfish  # counted as a normal node

    def test_random_player_rate(self):
        p = RandomPlayer(0, 0.7, np.random.default_rng(0))
        outcomes = [p.decide_packet(1, TRUST, ACTIVITY).forward for _ in range(2000)]
        assert 0.65 < np.mean(outcomes) < 0.75

    def test_random_player_validates_p(self):
        with pytest.raises(ValueError):
            RandomPlayer(0, 1.5, np.random.default_rng(0))

    def test_threshold_player(self):
        p = ThresholdPlayer(0, min_trust=2)
        seed_reputation(p, 5, forwarded=19, dropped=1)  # trust 3
        seed_reputation(p, 6, forwarded=1, dropped=1)  # trust 1
        assert p.decide_packet(5, TRUST, ACTIVITY).forward
        assert not p.decide_packet(6, TRUST, ACTIVITY).forward

    def test_threshold_unknown_configurable(self):
        assert ThresholdPlayer(0).decide_packet(9, TRUST, ACTIVITY).forward
        assert not (
            ThresholdPlayer(0, forward_unknown=False)
            .decide_packet(9, TRUST, ACTIVITY)
            .forward
        )


class TestLifecycle:
    def test_reset_memory(self):
        p = AlwaysForwardPlayer(0)
        seed_reputation(p, 5, forwarded=1, dropped=0)
        p.reset_memory()
        assert not p.reputation.knows(5)

    def test_reset_payoffs(self):
        p = AlwaysForwardPlayer(0)
        p.payoffs.record_send(5.0)
        p.reset_payoffs()
        assert p.payoffs.n_events == 0

    def test_repr_contains_id(self):
        assert "7" in repr(AlwaysForwardPlayer(7))

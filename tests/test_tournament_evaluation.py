"""Unit tests for the multi-environment evaluation scheme (§4.4, Fig. 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategy import Strategy
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.sim.reference import ReferenceEngine
from repro.tournament.environment import TournamentEnvironment
from repro.tournament.evaluation import evaluate_generation


def make_engine(n_pop=12, max_csn=4):
    engine = ReferenceEngine(n_pop, max_csn)
    engine.set_strategies([Strategy.all_forward() for _ in range(n_pop)])
    return engine


def run_eval(engine, envs, rounds=5, L=1, seed=0, oracle_seed=1):
    oracle = RandomPathOracle(np.random.default_rng(oracle_seed), SHORTER_PATHS)
    return evaluate_generation(
        engine,
        envs,
        rounds=rounds,
        plays_per_environment=L,
        oracle=oracle,
        rng=np.random.default_rng(seed),
    )


class TestStructure:
    def test_per_environment_stats_keys(self):
        envs = [
            TournamentEnvironment("A", 8, 0),
            TournamentEnvironment("B", 8, 2),
        ]
        result = run_eval(make_engine(), envs)
        assert set(result.per_environment) == {"A", "B"}

    def test_overall_is_merge_of_envs(self):
        envs = [
            TournamentEnvironment("A", 8, 0),
            TournamentEnvironment("B", 8, 2),
        ]
        result = run_eval(make_engine(), envs)
        total = sum(s.nn_originated for s in result.per_environment.values())
        assert result.overall.nn_originated == total

    def test_game_counts_follow_seatings(self):
        """12 players, 6 normal seats, L=1 -> 2 seatings x rounds x size games."""
        env = TournamentEnvironment("A", 8, 2)  # 6 normal + 2 CSN
        result = run_eval(make_engine(), [env], rounds=5)
        stats = result.per_environment["A"]
        assert stats.nn_originated == 2 * 5 * 6
        assert stats.csn_originated == 2 * 5 * 2

    def test_fitness_vector_covers_population(self):
        result = run_eval(make_engine(12), [TournamentEnvironment("A", 8, 2)])
        assert result.fitness.shape == (12,)
        assert (result.fitness > 0).all()  # everyone played and earned payoffs

    def test_memory_cleared_between_generations(self):
        engine = make_engine()
        env = TournamentEnvironment("A", 8, 0)
        run_eval(engine, [env])
        first = engine.player(0).payoffs.n_events
        run_eval(engine, [env])
        # payoffs were reset, so event counts do not accumulate
        assert engine.player(0).payoffs.n_events == first

    def test_no_environment_rejected(self):
        with pytest.raises(ValueError):
            run_eval(make_engine(), [])

    def test_oversized_environment_rejected(self):
        env = TournamentEnvironment("huge", 20, 2)  # needs 18 normals, have 12
        with pytest.raises(ValueError, match="needs 18"):
            run_eval(make_engine(12), [env])

    def test_cooperation_level_property(self):
        result = run_eval(make_engine(), [TournamentEnvironment("A", 8, 0)])
        assert result.cooperation_level == result.overall.cooperation_level
        assert result.cooperation_level == 1.0  # all-forward population


class TestCsnEffects:
    def test_csn_lower_cooperation(self):
        clean = run_eval(make_engine(), [TournamentEnvironment("A", 8, 0)], rounds=10)
        dirty = run_eval(
            make_engine(), [TournamentEnvironment("B", 8, 4)], rounds=10
        )
        assert dirty.overall.cooperation_level < clean.overall.cooperation_level

    def test_csn_requests_tracked(self):
        result = run_eval(make_engine(), [TournamentEnvironment("B", 8, 4)], rounds=10)
        stats = result.per_environment["B"]
        assert stats.requests_from_csn.total > 0
        assert stats.requests_from_nn.rejected_by_csn > 0


class TestDeterminism:
    def test_same_seeds_same_result(self):
        envs = [TournamentEnvironment("A", 8, 2)]
        r1 = run_eval(make_engine(), envs, seed=7, oracle_seed=8)
        r2 = run_eval(make_engine(), envs, seed=7, oracle_seed=8)
        assert np.array_equal(r1.fitness, r2.fitness)
        assert r1.overall.to_dict() == r2.overall.to_dict()

    def test_different_seeds_differ(self):
        envs = [TournamentEnvironment("A", 8, 2)]
        r1 = run_eval(make_engine(), envs, seed=7, oracle_seed=8)
        r2 = run_eval(make_engine(), envs, seed=9, oracle_seed=10)
        assert r1.overall.to_dict() != r2.overall.to_dict()


class TestFusedDispatch:
    """evaluate_generation hands a fusing engine the whole generation at
    once; the structural workload and hook clocking must match the
    per-tournament path exactly (the outcome stream is gated separately in
    ``tests/test_engine_statistical.py``)."""

    @staticmethod
    def make_fused(n_pop=12, max_csn=4):
        from repro.sim import make_engine as build_sim_engine

        engine = build_sim_engine("fused", n_pop, max_csn)
        engine.set_strategies([Strategy.all_forward() for _ in range(n_pop)])
        return engine

    def test_dispatches_through_run_generation(self):
        calls = []
        engine = self.make_fused()
        original = engine.run_generation

        def spy(seatings, rounds, *args, **kwargs):
            calls.append((len(seatings), rounds))
            return original(seatings, rounds, *args, **kwargs)

        engine.run_generation = spy
        envs = [
            TournamentEnvironment("A", 8, 2),
            TournamentEnvironment("B", 8, 0),
        ]
        run_eval(engine, envs, rounds=4)
        # one stacked call per environment, each carrying both seatings
        assert calls == [(2, 4), (2, 4)]

    def test_game_counts_match_per_tournament_path(self):
        """Without exchange the seating draws are identical on both paths,
        so the structural workload (originated counts) is equal."""
        env = TournamentEnvironment("A", 8, 2)
        fused = run_eval(self.make_fused(), [env], rounds=5)
        plain = run_eval(make_engine(), [env], rounds=5)
        f, p = fused.per_environment["A"], plain.per_environment["A"]
        assert f.nn_originated == p.nn_originated == 2 * 5 * 6
        assert f.csn_originated == p.csn_originated == 2 * 5 * 2
        assert fused.fitness.shape == plain.fitness.shape == (12,)
        assert (fused.fitness > 0).all()

    def test_engine_owns_tournament_hook_on_fused_path(self):
        class ClockedOracle(RandomPathOracle):
            def __init__(self, rng):
                super().__init__(rng, SHORTER_PATHS)
                self.tournament_ends = 0

            def on_tournament_end(self):
                self.tournament_ends += 1

        engine = self.make_fused()
        oracle = ClockedOracle(np.random.default_rng(1))
        envs = [
            TournamentEnvironment("A", 8, 2),
            TournamentEnvironment("B", 8, 0),
        ]
        evaluate_generation(
            engine,
            envs,
            rounds=3,
            plays_per_environment=1,
            oracle=oracle,
            rng=np.random.default_rng(0),
        )
        # fused or not, the clock ticks once per tournament: 2 envs x 2
        # seatings each (12 players, 6/8 normal seats, L=1)
        assert oracle.tournament_ends == 4

    def test_per_env_stats_stay_separate(self):
        envs = [
            TournamentEnvironment("A", 8, 0),
            TournamentEnvironment("B", 8, 4),
        ]
        result = run_eval(self.make_fused(), envs, rounds=6)
        assert set(result.per_environment) == {"A", "B"}
        total = sum(
            s.nn_originated + s.csn_originated
            for s in result.per_environment.values()
        )
        assert total == result.overall.nn_originated + result.overall.csn_originated
        # env B hosts the selfish seats; env A stays fully cooperative
        assert result.per_environment["A"].csn_originated == 0
        assert result.per_environment["B"].csn_originated > 0

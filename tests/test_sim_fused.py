"""Unit tests for the generation-fused engine's mechanics.

What's pinned here is the engine's own contract — conservation over the
stacked pass, the reputation invariants, the exchange fallback's
bit-identity to the sequential turbo loop, hook clocking, route-policy
scoping, and the speculation bookkeeping (replays + second-chance pass).
Distributional correctness against the exact engines lives in
``tests/test_engine_statistical.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.mobility import MobilityConfig
from repro.core.strategy import Strategy
from repro.game.stats import TournamentStats
from repro.mobility import build_oracle
from repro.network.provider import ApproxPolicy
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.reputation.exchange import ExchangeConfig
from repro.sim import BIT_IDENTICAL_ENGINES, ENGINES, make_engine
from repro.sim.fused import FusedEngine
from repro.sim.turbo import TurboEngine
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.runtime import telemetry_session


def build_engine(n_pop=16, n_csn=4, seed=7, name="fused"):
    rng = np.random.default_rng(seed)
    engine = make_engine(name, n_pop, n_csn)
    engine.set_strategies([Strategy.random(rng) for _ in range(n_pop)])
    return engine


def make_seatings(engine, n_tournaments, seed=3):
    rng = np.random.default_rng(seed)
    n_pop, n_csn = engine.n_population, engine.max_selfish
    return [
        [int(v) for v in rng.permutation(n_pop)] + engine.selfish_ids(n_csn)
        for _ in range(n_tournaments)
    ]


def run_generation(engine, n_tournaments=6, rounds=10, seed=3, oracle_seed=5):
    seatings = make_seatings(engine, n_tournaments, seed)
    oracle = RandomPathOracle(np.random.default_rng(oracle_seed), SHORTER_PATHS)
    stats = TournamentStats()
    engine.reset_generation()
    engine.run_generation(seatings, rounds, oracle, stats)
    return stats, seatings


class CountingOracle(RandomPathOracle):
    """A random oracle with the per-tournament clock hook instrumented."""

    def __init__(self, rng):
        super().__init__(rng, SHORTER_PATHS)
        self.tournament_ends = 0

    def on_tournament_end(self):
        self.tournament_ends += 1


class TestConstruction:
    def test_registered(self):
        assert ENGINES["fused"] is FusedEngine
        assert FusedEngine.name == "fused"
        assert issubclass(FusedEngine, TurboEngine)
        assert "fused" not in BIT_IDENTICAL_ENGINES

    def test_generation_fusion_flag(self):
        # evaluate_generation dispatches on this flag; only fused sets it
        assert FusedEngine.supports_generation_fusion is True
        for name in sorted(ENGINES):
            if name != "fused":
                assert not getattr(
                    ENGINES[name], "supports_generation_fusion", False
                )


class TestValidation:
    def test_rounds_must_be_positive(self):
        engine = build_engine()
        oracle = RandomPathOracle(np.random.default_rng(0), SHORTER_PATHS)
        with pytest.raises(ValueError, match="rounds must be >= 1"):
            engine.run_generation([[0, 1, 2]], 0, oracle, TournamentStats())

    def test_needs_at_least_one_seating(self):
        engine = build_engine()
        oracle = RandomPathOracle(np.random.default_rng(0), SHORTER_PATHS)
        with pytest.raises(ValueError, match="at least one seating"):
            engine.run_generation([], 4, oracle, TournamentStats())

    def test_unequal_seating_sizes_rejected(self):
        engine = build_engine()
        oracle = RandomPathOracle(np.random.default_rng(0), SHORTER_PATHS)
        with pytest.raises(ValueError, match="same size"):
            engine.run_generation(
                [[0, 1, 2, 3], [0, 1, 2]], 4, oracle, TournamentStats()
            )

    def test_exchange_requires_rng(self):
        engine = build_engine()
        oracle = RandomPathOracle(np.random.default_rng(0), SHORTER_PATHS)
        with pytest.raises(ValueError, match="requires an rng"):
            engine.run_generation(
                [[0, 1, 2]],
                4,
                oracle,
                TournamentStats(),
                ExchangeConfig(enabled=True),
            )


class TestStackedPass:
    def test_conservation_and_invariants(self):
        engine = build_engine()
        rounds, n_t = 12, 8
        stats, seatings = run_generation(engine, n_t, rounds)
        n_seats = len(seatings[0])
        assert (
            stats.nn_originated + stats.csn_originated == rounds * n_t * n_seats
        )
        assert stats.nn_delivered <= stats.nn_originated
        assert stats.csn_delivered <= stats.csn_originated
        # reputation invariants across the whole stack
        assert (engine.pf <= engine.ps).all()
        assert np.array_equal(engine.known, (engine.ps > 0).sum(axis=1))
        assert np.array_equal(engine.pf_sum, engine.pf.sum(axis=1))
        assert int(engine.n_sent.sum()) == rounds * n_t * n_seats

    def test_speculation_bookkeeping(self):
        # at this density conflicts do happen; most resolve in the
        # vectorized second-chance pass, the twice-conflicted rest replays
        # through the scalar kernel — both counters reset per generation
        engine = build_engine()
        run_generation(engine, n_tournaments=10, rounds=20)
        assert engine._second_chance_games + engine._replayed_games > 0
        engine2 = build_engine()
        run_generation(engine2, n_tournaments=10, rounds=20)
        assert engine2._second_chance_games == engine._second_chance_games
        assert engine2._replayed_games == engine._replayed_games

    def test_matches_sequential_turbo_workload(self):
        """Fused and per-tournament turbo play the same structural workload
        (same games, same path-choice counts); outcome totals differ only
        within the statistical contract."""
        fused = build_engine(name="fused")
        turbo = build_engine(name="turbo")
        f_stats, seatings = run_generation(fused, n_tournaments=5, rounds=8)
        oracle = RandomPathOracle(np.random.default_rng(5), SHORTER_PATHS)
        t_stats = TournamentStats()
        turbo.reset_generation()
        for seating in seatings:
            turbo.run_tournament(seating, 8, oracle, t_stats, None, None)
        f, t = f_stats.to_dict(), t_stats.to_dict()
        assert f["nn_originated"] == t["nn_originated"]
        assert f["csn_originated"] == t["csn_originated"]
        assert f["nn_paths_chosen"] == t["nn_paths_chosen"]
        assert f["csn_paths_chosen"] == t["csn_paths_chosen"]

    def test_tournament_hook_fires_once_per_seating(self):
        engine = build_engine()
        oracle = CountingOracle(np.random.default_rng(2))
        seatings = make_seatings(engine, 7)
        engine.reset_generation()
        engine.run_generation(seatings, 3, oracle, TournamentStats())
        assert oracle.tournament_ends == 7

    def test_telemetry_counters(self):
        engine = build_engine()
        with telemetry_session(TelemetryConfig(enabled=True)) as tel:
            run_generation(engine, n_tournaments=6, rounds=10)
            counters = tel.snapshot()["counters"]
        n_seats = engine.n_population + engine.max_selfish
        assert counters["engine.fused.generations"] == 1
        assert counters["engine.fused.stacked_tournaments"] == 6
        assert counters["engine.fused.games"] == 10 * 6 * n_seats
        assert counters["engine.games"] == 10 * 6 * n_seats
        assert counters["engine.tournaments"] == 6
        assert (
            counters.get("engine.fused.second_chance_games", 0)
            == engine._second_chance_games
        )
        assert (
            counters.get("engine.turbo.replayed_games", 0)
            == engine._replayed_games
        )


class TestExchangeFallback:
    def test_exchange_falls_back_bit_identical_to_turbo_loop(self):
        fused = build_engine(name="fused")
        turbo = build_engine(name="turbo")
        seatings = make_seatings(fused, 4)
        config = ExchangeConfig(enabled=True, interval=3, fanout=2)

        f_stats = TournamentStats()
        fused.reset_generation()
        fused.run_generation(
            seatings,
            9,
            RandomPathOracle(np.random.default_rng(5), SHORTER_PATHS),
            f_stats,
            config,
            np.random.default_rng(17),
        )

        t_stats = TournamentStats()
        turbo.reset_generation()
        oracle = RandomPathOracle(np.random.default_rng(5), SHORTER_PATHS)
        rng = np.random.default_rng(17)
        for seating in seatings:
            turbo.run_tournament(seating, 9, oracle, t_stats, config, rng)

        assert f_stats.to_dict() == t_stats.to_dict()
        assert np.array_equal(fused.payoff_matrix(), turbo.payoff_matrix())
        assert np.array_equal(fused.fitness(), turbo.fitness())

    def test_fallback_counts_in_telemetry_and_fires_hooks(self):
        engine = build_engine()
        oracle = CountingOracle(np.random.default_rng(2))
        seatings = make_seatings(engine, 3)
        with telemetry_session(TelemetryConfig(enabled=True)) as tel:
            engine.reset_generation()
            engine.run_generation(
                seatings,
                4,
                oracle,
                TournamentStats(),
                ExchangeConfig(enabled=True, interval=2, fanout=1),
                np.random.default_rng(0),
            )
            counters = tel.snapshot()["counters"]
        assert counters["engine.fused.fallback_tournaments"] == 3
        assert "engine.fused.generations" not in counters
        assert oracle.tournament_ends == 3


def make_mobile_oracle(seed=1, policy="exact", n=20):
    config = MobilityConfig(
        model="waypoint", radio_range=0.5, route_cache=policy
    )
    return build_oracle(config, range(n), np.random.default_rng(seed))


class TestRoutePolicyScoping:
    def test_swap_and_restore_around_planning(self):
        oracle = make_mobile_oracle()
        before = oracle.provider.policy
        assert before.budget == 0
        engine = build_engine()
        seatings = make_seatings(engine, 3)
        engine.reset_generation()
        engine.run_generation(seatings, 4, oracle, TournamentStats())
        # the generation-scoped share policy never leaks out of planning
        assert oracle.provider.policy is before

    def test_share_is_noop_for_approx_and_static_oracles(self):
        approx = make_mobile_oracle(policy="approx")
        assert approx.provider.policy.budget > 0
        assert FusedEngine._share_route_tables(approx) is None
        assert approx.provider.policy.name == "approx"
        random_oracle = RandomPathOracle(
            np.random.default_rng(0), SHORTER_PATHS
        )
        assert FusedEngine._share_route_tables(random_oracle) is None

    def test_share_swaps_exact_to_zero_budget_revalidation(self):
        oracle = make_mobile_oracle()
        previous = FusedEngine._share_route_tables(oracle)
        try:
            assert previous is not None and previous.name == "exact"
            assert isinstance(oracle.provider.policy, ApproxPolicy)
            assert oracle.provider.policy.budget == 0
            assert oracle.provider._revalidate is True
        finally:
            FusedEngine._restore_route_policy(oracle, previous)
        assert oracle.provider.policy is previous
        assert oracle.provider._revalidate is False

    def test_policy_restored_when_planning_raises(self, monkeypatch):
        import repro.sim.fused as fused_mod

        oracle = make_mobile_oracle()
        before = oracle.provider.policy

        def boom(*args, **kwargs):
            raise RuntimeError("planner exploded")

        monkeypatch.setattr(fused_mod, "plan_generation_arrays", boom)
        engine = build_engine()
        seatings = make_seatings(engine, 2)
        with pytest.raises(RuntimeError, match="planner exploded"):
            engine.run_generation(seatings, 4, oracle, TournamentStats())
        assert oracle.provider.policy is before

"""Unit tests for cooperation-series analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.cooperation import (
    final_mean_cooperation,
    moving_average,
    series_confidence_band,
)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        s = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(moving_average(s, 1), s)

    def test_trailing_window(self):
        s = np.array([1.0, 2.0, 3.0, 4.0])
        out = moving_average(s, 2)
        assert np.allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_same_length(self):
        s = np.arange(10, dtype=float)
        assert len(moving_average(s, 4)) == 10

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average(np.array([1.0]), 0)

    def test_constant_series_unchanged(self):
        s = np.full(6, 3.3)
        assert np.allclose(moving_average(s, 3), s)

    def test_empty_series(self):
        assert len(moving_average(np.array([]), 3)) == 0


class TestFinalMean:
    def test_tail_one(self):
        m = np.array([[0.1, 0.9], [0.3, 0.7]])
        assert final_mean_cooperation(m) == pytest.approx(0.8)

    def test_tail_two(self):
        m = np.array([[0.1, 0.9], [0.3, 0.7]])
        assert final_mean_cooperation(m, tail=2) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            final_mean_cooperation(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            final_mean_cooperation(np.array([[1.0]]), tail=2)


class TestConfidenceBand:
    def test_single_replication_degenerate(self):
        m = np.array([[0.5, 0.6]])
        mean, lo, hi = series_confidence_band(m)
        assert np.array_equal(mean, lo)
        assert np.array_equal(mean, hi)

    def test_band_contains_mean(self):
        rng = np.random.default_rng(0)
        m = rng.random((10, 5))
        mean, lo, hi = series_confidence_band(m)
        assert (lo <= mean).all() and (mean <= hi).all()

    def test_band_narrows_with_replications(self):
        rng = np.random.default_rng(1)
        few = rng.random((4, 6))
        many = np.vstack([few] * 16)  # same variance, 16x replications
        _, lo_few, hi_few = series_confidence_band(few)
        _, lo_many, hi_many = series_confidence_band(many)
        assert ((hi_many - lo_many) <= (hi_few - lo_few) + 1e-12).all()

"""Unit tests for DynamicTopology (incremental graph repair, epochs, churn)."""

from __future__ import annotations

import itertools

import networkx as nx
import numpy as np
import pytest

from repro.mobility import DynamicTopology, GaussMarkov, NodeChurn, RandomWaypoint

N = 20
RADIO = 0.45


def make_topology(model=None, radio=RADIO, seed=0, n=N, **kwargs):
    model = model or RandomWaypoint(0.01, 0.06, pause_time=1.0)
    return DynamicTopology(
        list(range(n)), radio, model, np.random.default_rng(seed), **kwargs
    )


def rebuilt_from_scratch(topo) -> nx.Graph:
    """The graph a full O(n^2) rebuild would produce from current state."""
    graph = nx.Graph()
    graph.add_nodes_from(topo.node_ids)
    pos = topo.position_array()
    active = [topo.is_active(nid) for nid in topo.node_ids]
    for a, b in itertools.combinations(range(len(pos)), 2):
        if not (active[a] and active[b]):
            continue
        if ((pos[a] - pos[b]) ** 2).sum() <= topo.radio_range**2:
            graph.add_edge(topo.node_ids[a], topo.node_ids[b])
    return graph


def edge_set(graph) -> set[frozenset]:
    return {frozenset(e) for e in graph.edges}


class TestConstruction:
    def test_validation(self):
        rng = np.random.default_rng(0)
        model = RandomWaypoint(0.0, 0.1)
        with pytest.raises(ValueError):
            DynamicTopology([0, 1, 2], 0.0, model, rng)
        with pytest.raises(ValueError):
            DynamicTopology([0, 1], 0.5, model, rng)
        with pytest.raises(ValueError):
            DynamicTopology([0, 1, 2], 0.5, model, rng, dt=0.0)
        with pytest.raises(ValueError):
            DynamicTopology([0, 1, 2], 0.5, model, rng, tolerance=-0.1)

    def test_starts_connected(self):
        assert nx.is_connected(make_topology().graph)

    def test_sparse_start_fails_loudly(self):
        with pytest.raises(RuntimeError, match="radio_range"):
            make_topology(radio=0.02, n=40, max_reset_attempts=3)

    def test_disconnected_start_allowed_when_not_required(self):
        topo = make_topology(
            radio=0.1, n=15, seed=2, require_connected_start=False
        )
        assert len(topo.graph) == 15  # built without raising

    def test_positions_dict_keyed_by_id(self):
        topo = make_topology()
        assert set(topo.positions) == set(range(N))
        for x, y in topo.positions.values():
            assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0


class TestIncrementalRepair:
    @pytest.mark.parametrize(
        "model_factory",
        [
            lambda: RandomWaypoint(0.01, 0.06, pause_time=1.0),
            lambda: GaussMarkov(0.04),
            lambda: NodeChurn(RandomWaypoint(0.02, 0.08), 0.15, 0.5),
        ],
    )
    def test_matches_full_rebuild_after_many_steps(self, model_factory):
        topo = make_topology(model_factory())
        for _ in range(40):
            topo.step()
            assert edge_set(topo.graph) == edge_set(rebuilt_from_scratch(topo))

    def test_step_reports_edge_changes(self):
        topo = make_topology(RandomWaypoint(0.1, 0.2, pause_time=0.0))
        changed_any = any(topo.step() for _ in range(20))
        assert changed_any
        assert topo.epoch > 0


class TestEpochs:
    def test_stationary_network_never_advances_epoch(self):
        topo = make_topology(RandomWaypoint(0.0, 0.0))
        for _ in range(10):
            assert topo.step() is False
        assert topo.epoch == 0

    def test_epoch_counts_edge_set_changes_only(self):
        """Movement below tolerance leaves the edge set (and epoch) alone."""
        topo = make_topology(RandomWaypoint(0.001, 0.002), tolerance=1.5)
        before = edge_set(topo.graph)
        for _ in range(10):
            topo.step()
        assert topo.epoch == 0
        assert edge_set(topo.graph) == before

    def test_churn_flip_advances_epoch(self):
        topo = make_topology(NodeChurn(RandomWaypoint(0.0, 0.0), 1.0, 1.0))
        assert topo.step() is True  # everyone left: all edges dropped
        assert topo.epoch == 1
        assert topo.graph.number_of_edges() == 0
        assert topo.step() is True  # everyone returned
        assert edge_set(topo.graph) == edge_set(rebuilt_from_scratch(topo))


class TestChurnInGraph:
    def test_inactive_nodes_are_isolated(self):
        topo = make_topology(NodeChurn(RandomWaypoint(0.01, 0.05), 0.3, 0.2))
        for _ in range(5):
            topo.step()
        away = [nid for nid in topo.node_ids if not topo.is_active(nid)]
        assert away, "seed should produce at least one absent node"
        for nid in away:
            assert topo.graph.degree(nid) == 0
        assert set(topo.active_ids()) == set(topo.node_ids) - set(away)

    def test_inactive_source_still_routes_virtually(self):
        topo = make_topology(NodeChurn(RandomWaypoint(0.01, 0.05), 0.3, 0.2))
        for _ in range(5):
            topo.step()
        away = [nid for nid in topo.node_ids if not topo.is_active(nid)]
        source = away[0]
        edges_before = edge_set(topo.graph)
        found = any(
            topo.candidate_paths(source, dest, 3, 10)
            for dest in topo.active_ids()
        )
        assert found
        for path in topo.candidate_paths(source, topo.active_ids()[0], 3, 10):
            assert all(topo.is_active(node) for node in path)
        # the virtual re-link is transient: the graph is untouched afterwards
        assert edge_set(topo.graph) == edges_before


class TestScopedRouting:
    def test_paths_restricted_to_scope(self):
        topo = make_topology()
        scope = frozenset(range(0, N, 2))
        for dest in sorted(scope - {0}):
            for path in topo.candidate_paths(0, dest, 3, 10, restrict_to=scope):
                assert set(path) <= scope

    def test_emergency_boost_attaches_isolated_source(self):
        """A source with no in-scope neighbour is virtually attached to its
        nearest participating node rather than failing outright."""
        topo = make_topology()
        neighbours = set(topo.graph[0])
        scope = frozenset(set(topo.node_ids) - neighbours)
        assert 0 in scope
        edges_before = edge_set(topo.graph)
        boosts_before = topo.boost_count
        found = any(
            topo.candidate_paths(0, dest, 3, 10, restrict_to=scope)
            for dest in sorted(scope - {0})
        )
        assert found
        assert topo.boost_count > boosts_before
        assert edge_set(topo.graph) == edges_before

    def test_no_boost_when_source_has_scope_neighbours(self):
        topo = make_topology()
        scope = frozenset(topo.node_ids)
        topo.candidate_paths(0, N - 1, 3, 10, restrict_to=scope)
        assert topo.boost_count == 0


class TestDeterminism:
    def test_same_seed_identical_graph_evolution(self):
        def evolve(seed):
            topo = make_topology(seed=seed)
            history = []
            for _ in range(30):
                topo.step()
                history.append(
                    (topo.epoch, tuple(sorted(map(tuple, topo.graph.edges))))
                )
            return history

        assert evolve(5) == evolve(5)
        assert evolve(5) != evolve(6)

"""Kernel backend contract (:mod:`repro.sim.kernels`).

Three layers of pinning:

* **Selection** — ``resolve_kernel`` policy (``auto`` prefers the compiled
  backend, explicit ``numba`` fails fast with the install hint), config and
  factory validation, the ``TimedKernel`` telemetry wrapper.
* **Bit-identity of the numpy backend** — the kernel refactor moved the
  engines' inline hot loops behind the op interface; the pinned digests
  below were recorded on the pre-kernel scalar code, so any drift in the
  reference backend is a test failure, not a re-pin.
* **Cross-backend parity** — every test that exercises op semantics is
  parametrized over the installed backends.  When numba is absent (the
  default container; the ``.[kernels]`` extra is optional) its parameter
  *skips visibly* rather than silently narrowing the suite; the compiled
  backend itself is held to the statistical-equivalence tier
  (``compare_samples``), not bit-identity — float reductions may associate
  differently under fusion.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import run_replication
from repro.sim import make_engine
from repro.sim.kernels import (
    KERNEL_NAMES,
    TimedKernel,
    available_backends,
    numba_available,
    resolve_kernel,
)
from repro.sim.kernels.numpy_backend import NumpyKernel

needs_numba = pytest.mark.skipif(
    not numba_available(),
    reason="numba not installed (optional .[kernels] extra) — compiled"
    " backend untested on this machine",
)

#: Both backends when installed; the numba parameter skips *visibly*.
BACKENDS = [
    "numpy",
    pytest.param("numba", marks=needs_numba),
]


def replication_digest(config: ExperimentConfig, replication: int = 0) -> str:
    result = run_replication(config, replication)
    blob = json.dumps(result.to_dict(), sort_keys=True, default=float)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class TestSelection:
    def test_kernel_names(self):
        assert KERNEL_NAMES == ("auto", "numpy", "numba")

    def test_available_backends(self):
        avail = available_backends()
        assert avail["numpy"] is True
        assert set(avail) == {"numpy", "numba"}

    def test_numpy_always_resolves(self):
        kernel = resolve_kernel("numpy")
        assert kernel.name == "numpy"
        assert kernel.compiled is False

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_kernel("fortran")

    def test_auto_prefers_compiled_when_available(self):
        kernel = resolve_kernel("auto")
        if numba_available():
            assert kernel.name == "numba"
            assert kernel.compiled is True
        else:
            assert kernel.name == "numpy"

    @pytest.mark.skipif(
        numba_available(), reason="numba installed; the fail-fast path is moot"
    )
    def test_explicit_numba_fails_fast_with_install_hint(self):
        with pytest.raises(RuntimeError, match=r"\.\[kernels\]"):
            resolve_kernel("numba")

    def test_config_validates_kernel_name(self):
        with pytest.raises(ValueError, match="kernel must be one of"):
            ExperimentConfig.for_case("case1", scale="smoke", kernel="fortran")

    def test_config_rejects_numba_on_non_kernel_engine(self):
        with pytest.raises(ValueError, match="does not support kernel"):
            ExperimentConfig.for_case(
                "case1", scale="smoke", engine="batch", kernel="numba"
            )

    def test_factory_rejects_numba_on_non_kernel_engine(self):
        with pytest.raises(ValueError, match="does not support kernel"):
            make_engine("batch", 10, 2, kernel="numba")

    def test_factory_threads_kernel_to_capable_engines(self):
        for name in ("turbo", "fused"):
            engine = make_engine(name, 10, 2, kernel="numpy")
            assert engine.supports_kernel_backends
            assert engine.kernel_name == "numpy"
            assert engine._kernel.name == "numpy"

    def test_non_kernel_engines_tolerate_the_defaults(self):
        # "auto"/"numpy" mean "the reference semantics", which fixed
        # engines natively implement — only an explicit numba is an error
        for kernel in ("auto", "numpy"):
            engine = make_engine("batch", 10, 2, kernel=kernel)
            assert not getattr(engine, "supports_kernel_backends", False)


class TestTimedKernel:
    def test_wraps_and_times_ops(self):
        from repro.telemetry.registry import MetricsRegistry

        registry = MetricsRegistry()
        timed = TimedKernel(NumpyKernel(), registry)
        assert timed.name == "numpy"
        assert timed.compiled is False
        buf = np.full(7, 99, dtype=np.int64)
        # contract: pos ascending (game order), so the first writer wins
        codes = np.array([2, 2, 5], dtype=np.int64)
        pos = np.array([0, 1, 2], dtype=np.int64)
        timed.first_writer(buf, 99, codes, pos)
        expected = np.full(7, 99, dtype=np.int64)
        np.minimum.at(expected, codes, pos)
        np.testing.assert_array_equal(buf, expected)
        snapshot = registry.snapshot()
        assert snapshot["timers"]["kernel.walk_s"]["count"] == 1


class TestFirstWriterParity:
    """The conflict walk is the one op with a non-obvious vectorization
    (reversed scatter-assign standing in for ``minimum.at`` on ascending
    positions) — pin it directly against the obvious semantics on both
    backends."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", [0, 7, 991])
    def test_matches_minimum_at(self, backend, seed):
        kernel = resolve_kernel(backend)
        rng = np.random.default_rng(seed)
        n_codes, n_events = 50, 200
        codes = rng.integers(0, n_codes, size=n_events).astype(np.int64)
        pos = np.sort(rng.integers(0, 10_000, size=n_events)).astype(np.int64)
        buf = np.empty(n_codes, dtype=np.int64)
        kernel.first_writer(buf, 1 << 60, codes, pos)
        expected = np.full(n_codes, 1 << 60, dtype=np.int64)
        np.minimum.at(expected, codes, pos)
        np.testing.assert_array_equal(buf, expected)


class TestNumpyBitIdentity:
    """The numpy backend IS the pre-kernel engine code: digests recorded on
    the inline implementation before the refactor must keep verifying."""

    PINNED = [
        ("turbo", "case1", 1234, "68970e5a3bb396ae"),
        ("turbo", "case3", 1234, "fdd6e5abf8a9a80d"),
        ("turbo", "exchange_core", 1234, "670a6c26e4788d12"),
        ("turbo", "mobile_gauss", 7, "98d652ad93e77a57"),
        ("fused", "case1", 1234, "5d931f9d1726a965"),
        ("fused", "case3", 1234, "d3e38025ad52b233"),
        ("fused", "exchange_core", 1234, "2e6ad40dcbdf84a6"),
        ("fused", "mobile_gauss", 7, "c4af90387c207d1f"),
    ]

    @pytest.mark.parametrize("engine,case,seed,expected", PINNED)
    def test_pinned_digests(self, engine, case, seed, expected):
        config = ExperimentConfig.for_case(
            case, scale="smoke", engine=engine, seed=seed, kernel="numpy"
        )
        assert replication_digest(config) == expected

    def test_auto_is_numpy_when_numba_absent(self):
        if numba_available():
            pytest.skip("numba installed; auto resolves to the compiled backend")
        config = ExperimentConfig.for_case(
            "case1", scale="smoke", engine="fused", seed=1234
        )
        assert config.kernel == "auto"
        assert replication_digest(config) == "5d931f9d1726a965"


@needs_numba
class TestNumbaStatisticalEquivalence:
    """Gate the compiled backend on the same distributional tier that
    admits turbo/fused: KS + Mann-Whitney on cooperation and fitness
    samples, numpy-kernel vs numba-kernel ensembles."""

    def test_distributions_match(self):
        from repro.analysis.equivalence import (
            collect_engine_samples,
            compare_samples,
        )

        config = ExperimentConfig.for_case(
            "case3", scale="smoke", seed=424243, engine="fused"
        )
        reference = collect_engine_samples(config.with_(kernel="numpy"), 20)
        compiled = collect_engine_samples(config.with_(kernel="numba"), 20)
        report = compare_samples(reference[0], compiled[0], alpha=0.01)
        assert report.equivalent, report

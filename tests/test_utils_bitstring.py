"""Unit and property tests for repro.utils.bitstring."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitstring import (
    bits_from_int,
    bits_from_string,
    bits_to_int,
    bits_to_string,
    hamming_distance,
    validate_bits,
)

bit_lists = st.lists(st.integers(0, 1), min_size=0, max_size=32)


class TestValidateBits:
    def test_accepts_zeros_and_ones(self):
        assert validate_bits([0, 1, 1, 0]) == (0, 1, 1, 0)

    def test_rejects_other_values(self):
        with pytest.raises(ValueError, match="0 or 1"):
            validate_bits([0, 2])

    def test_length_check(self):
        with pytest.raises(ValueError, match="expected 3 bits"):
            validate_bits([0, 1], length=3)

    def test_accepts_numpy_like_ints(self):
        assert validate_bits([True, False]) == (1, 0)


class TestStringConversion:
    def test_parses_grouped_form(self):
        assert bits_from_string("010 101 1") == (0, 1, 0, 1, 0, 1, 1)

    def test_parses_underscores(self):
        assert bits_from_string("01_10") == (0, 1, 1, 0)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="invalid characters"):
            bits_from_string("01x0")

    def test_length_enforced(self):
        with pytest.raises(ValueError):
            bits_from_string("0101", length=5)

    def test_to_string_plain(self):
        assert bits_to_string((1, 0, 1)) == "101"

    def test_to_string_uniform_groups(self):
        assert bits_to_string((1, 0, 1, 1), group=2) == "10 11"

    def test_to_string_custom_groups(self):
        assert bits_to_string((1, 0, 1, 1, 0), group=(3, 2)) == "101 10"

    def test_to_string_group_mismatch(self):
        with pytest.raises(ValueError, match="do not cover"):
            bits_to_string((1, 0, 1), group=(2, 2))

    @given(bit_lists)
    def test_string_roundtrip(self, bits):
        assert bits_from_string(bits_to_string(tuple(bits))) == tuple(bits)


class TestIntConversion:
    def test_bit0_is_lowest(self):
        assert bits_to_int((1, 0, 0)) == 1
        assert bits_to_int((0, 0, 1)) == 4

    def test_from_int(self):
        assert bits_from_int(5, 4) == (1, 0, 1, 0)

    def test_from_int_rejects_overflow(self):
        with pytest.raises(ValueError, match="does not fit"):
            bits_from_int(8, 3)

    def test_from_int_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            bits_from_int(-1, 3)

    @given(bit_lists.filter(lambda b: len(b) > 0))
    def test_int_roundtrip(self, bits):
        bits = tuple(bits)
        assert bits_from_int(bits_to_int(bits), len(bits)) == bits

    @given(st.integers(0, 2**20 - 1))
    def test_int_roundtrip_from_value(self, value):
        assert bits_to_int(bits_from_int(value, 20)) == value


class TestHammingDistance:
    def test_zero_for_equal(self):
        assert hamming_distance((1, 0, 1), (1, 0, 1)) == 0

    def test_counts_differences(self):
        assert hamming_distance((1, 0, 1, 0), (0, 0, 1, 1)) == 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            hamming_distance((1,), (1, 0))

    @given(bit_lists, bit_lists)
    def test_symmetric(self, a, b):
        if len(a) != len(b):
            return
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(bit_lists)
    def test_distance_to_complement_is_length(self, bits):
        flipped = [1 - b for b in bits]
        assert hamming_distance(bits, flipped) == len(bits)

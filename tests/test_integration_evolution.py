"""End-to-end directional tests: does evolution move the way the paper says?

These run miniature but complete experiments (population, tournaments, GA)
and assert *qualitative* paper findings — cooperation emerges without CSN,
CSN sources get frozen out, selfish payoffs without reputation kill
cooperation.  Absolute numbers are asserted loosely; the full quantitative
comparison lives in EXPERIMENTS.md at the documented scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.parameters import GAConfig, SimulationConfig
from repro.core.payoff import PayoffConfig
from repro.experiments.cases import EvaluationCase
from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import run_replication
from repro.tournament.environment import TournamentEnvironment

# a miniature world: 24 evolving players, tournaments of 12
MINI_GA = GAConfig(population_size=24)


def mini_case(n_csn: int, path_mode: str = "shorter") -> EvaluationCase:
    return EvaluationCase(
        name=f"mini{n_csn}",
        description="miniature test case",
        environments=(TournamentEnvironment("MINI", 12, n_csn),),
        path_mode=path_mode,
    )


def mini_config(n_csn=0, generations=25, rounds=60, payoffs=None, seed=11):
    sim = SimulationConfig(
        rounds=rounds, payoffs=payoffs or PayoffConfig(), path_mode="shorter"
    )
    return ExperimentConfig(
        case=mini_case(n_csn),
        generations=generations,
        replications=1,
        seed=seed,
        engine="fast",
        ga=MINI_GA,
        sim=sim,
    )


@pytest.mark.slow
class TestCooperationEmerges:
    def test_csn_free_world_evolves_high_cooperation(self):
        """Paper §6.2 case 1: cooperation is the only way to send packets."""
        result = run_replication(mini_config(n_csn=0), 0)
        series = result.history.cooperation_series()
        assert series[-5:].mean() > 0.8
        assert series[-5:].mean() > series[:3].mean()

    def test_unknown_bit_evolves_to_forward(self):
        """Paper §6.3: the evolved decision against unknown nodes is F."""
        from repro.analysis.strategies import unknown_bit_fraction

        result = run_replication(mini_config(n_csn=0), 0)
        assert unknown_bit_fraction([result.final_population]) > 0.5

    def test_csn_heavy_world_suppresses_cooperation(self):
        """Paper §6.2 case 2: 60% CSN collapse delivery."""
        clean = run_replication(mini_config(n_csn=0), 0)
        dirty = run_replication(mini_config(n_csn=7), 0)  # ~58% of 12 seats
        clean_final = clean.history.cooperation_series()[-5:].mean()
        dirty_final = dirty.history.cooperation_series()[-5:].mean()
        assert dirty_final < clean_final - 0.3

    def test_csn_sources_frozen_out(self):
        """Paper §6.3: CSN packets only pass while CSN are still unknown."""
        result = run_replication(mini_config(n_csn=4, generations=20), 0)
        stats = result.final_overall
        assert stats.csn_delivery_level < stats.cooperation_level
        # requests from CSN are mostly rejected in the final generation
        assert stats.requests_from_csn.fraction_accepted() < 0.5


@pytest.mark.slow
class TestReputationIsTheMechanism:
    def test_without_reputation_payoffs_defection_wins(self):
        """§4.2: remove the reputation-shaped payoffs and discarding pays
        strictly more, so evolution abandons forwarding."""
        result = run_replication(
            mini_config(n_csn=0, payoffs=PayoffConfig.without_reputation()), 0
        )
        final_fwd = result.history.records[-1].mean_forwarding_fraction
        coop = result.history.cooperation_series()[-5:].mean()
        assert coop < 0.2
        assert final_fwd < 0.45

    def test_with_reputation_high_trust_block_converges_to_forward(self):
        """Paper Tables 8-9: the trust-3 sub-strategy converges to '111'
        (always forward); loci for trust levels that never occur at the
        cooperative equilibrium drift and need not converge."""
        from repro.analysis.strategies import substrategy_distribution

        result = run_replication(mini_config(n_csn=0), 0)
        dist3 = dict(substrategy_distribution([result.final_population], 3))
        assert dist3.get("111", 0.0) > 0.5


@pytest.mark.slow
class TestPathModeEffect:
    def test_longer_paths_hurt_with_csn(self):
        """Paper Table 5: with CSN, longer paths make avoidance harder."""

        def run(mode):
            case = mini_case(4, path_mode=mode)
            cfg = ExperimentConfig(
                case=case,
                generations=15,
                replications=1,
                seed=21,
                engine="fast",
                ga=MINI_GA,
                sim=SimulationConfig(rounds=60, path_mode=mode),
            )
            rep = run_replication(cfg, 0)
            return rep.final_overall

        short_stats = run("shorter")
        long_stats = run("longer")
        assert (
            long_stats.nn_csn_free_fraction <= short_stats.nn_csn_free_fraction
        )

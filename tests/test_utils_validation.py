"""Unit tests for the validation helpers."""

from __future__ import annotations

import pytest

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)


@pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
def test_probability_accepts_unit_interval(value):
    assert check_probability(value, "p") == value


@pytest.mark.parametrize("value", [-0.01, 1.01, 2])
def test_probability_rejects_outside(value):
    with pytest.raises(ValueError, match="p must be"):
        check_probability(value, "p")


def test_fraction_rejects_zero():
    with pytest.raises(ValueError):
        check_fraction(0.0, "f")


def test_fraction_accepts_one():
    assert check_fraction(1.0, "f") == 1.0


@pytest.mark.parametrize("value", [1e-9, 1, 100])
def test_positive_accepts(value):
    assert check_positive(value, "x") == value


@pytest.mark.parametrize("value", [0, -1])
def test_positive_rejects(value):
    with pytest.raises(ValueError):
        check_positive(value, "x")


def test_non_negative_accepts_zero():
    assert check_non_negative(0, "x") == 0


def test_non_negative_rejects_negative():
    with pytest.raises(ValueError):
        check_non_negative(-0.5, "x")

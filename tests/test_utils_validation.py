"""Unit tests for the validation helpers."""

from __future__ import annotations

import pytest

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)


@pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
def test_probability_accepts_unit_interval(value):
    assert check_probability(value, "p") == value


@pytest.mark.parametrize("value", [-0.01, 1.01, 2])
def test_probability_rejects_outside(value):
    with pytest.raises(ValueError, match="p must be"):
        check_probability(value, "p")


def test_fraction_rejects_zero():
    with pytest.raises(ValueError):
        check_fraction(0.0, "f")


def test_fraction_accepts_one():
    assert check_fraction(1.0, "f") == 1.0


@pytest.mark.parametrize("value", [1e-9, 1, 100])
def test_positive_accepts(value):
    assert check_positive(value, "x") == value


@pytest.mark.parametrize("value", [0, -1])
def test_positive_rejects(value):
    with pytest.raises(ValueError):
        check_positive(value, "x")


def test_non_negative_accepts_zero():
    assert check_non_negative(0, "x") == 0


def test_non_negative_rejects_negative():
    with pytest.raises(ValueError):
        check_non_negative(-0.5, "x")


class TestCheckpointManifestSchema:
    """Exact-key contract for checkpoint manifests (gen*.json)."""

    @staticmethod
    def valid() -> dict:
        return {
            "checkpoint_version": 1,
            "config_hash": "ab" * 32,
            "replication": 3,
            "generation": 42,
            "state_file": "gen000042.pkl",
            "state_sha256": "0" * 64,
        }

    def test_valid_payload_passes(self):
        from repro.utils.validation import (
            CHECKPOINT_KEYS,
            validate_checkpoint_manifest,
        )

        payload = self.valid()
        assert validate_checkpoint_manifest(payload) == payload
        assert set(payload) == CHECKPOINT_KEYS

    def test_rejects_non_mapping(self):
        from repro.utils.validation import validate_checkpoint_manifest

        with pytest.raises(ValueError, match="JSON object"):
            validate_checkpoint_manifest([1, 2])

    def test_rejects_missing_and_extra_keys(self):
        from repro.utils.validation import validate_checkpoint_manifest

        payload = self.valid()
        del payload["state_sha256"]
        payload["bonus"] = 1
        with pytest.raises(ValueError, match="keys mismatch"):
            validate_checkpoint_manifest(payload)

    @pytest.mark.parametrize("version", [0, 2, "1", True, None])
    def test_rejects_wrong_version(self, version):
        from repro.utils.validation import validate_checkpoint_manifest

        payload = self.valid()
        payload["checkpoint_version"] = version
        with pytest.raises(ValueError, match="checkpoint_version"):
            validate_checkpoint_manifest(payload)

    @pytest.mark.parametrize("field", ["replication", "generation"])
    @pytest.mark.parametrize("bad", [-1, 1.5, "3", True, None])
    def test_rejects_non_counting_ints(self, field, bad):
        from repro.utils.validation import validate_checkpoint_manifest

        payload = self.valid()
        payload[field] = bad
        with pytest.raises(ValueError, match=field):
            validate_checkpoint_manifest(payload)

    @pytest.mark.parametrize(
        "digest", ["", "0" * 63, "Z" * 64, "A" * 64, None, 7]
    )
    def test_rejects_bad_digest(self, digest):
        from repro.utils.validation import validate_checkpoint_manifest

        payload = self.valid()
        payload["state_sha256"] = digest
        with pytest.raises(ValueError, match="state_sha256"):
            validate_checkpoint_manifest(payload)

    @pytest.mark.parametrize("field", ["config_hash", "state_file"])
    def test_rejects_empty_strings(self, field):
        from repro.utils.validation import validate_checkpoint_manifest

        payload = self.valid()
        payload[field] = ""
        with pytest.raises(ValueError, match=field):
            validate_checkpoint_manifest(payload)


class TestFlagValidators:
    """drift_budget_error / shards_error — shared by CLI, scenarios, service."""

    def test_drift_budget_none_is_fine(self):
        from repro.utils.validation import drift_budget_error

        assert drift_budget_error(None, None) is None
        assert drift_budget_error("approx", None) is None
        assert drift_budget_error("approx", 8) is None

    def test_drift_budget_requires_approx(self):
        from repro.utils.validation import drift_budget_error

        assert "requires --route-cache approx" in drift_budget_error(None, 8)
        assert "requires --route-cache approx" in drift_budget_error("exact", 8)

    def test_drift_budget_range(self):
        from repro.utils.validation import drift_budget_error

        assert ">= 0" in drift_budget_error("approx", -1)

    def test_drift_budget_custom_labels(self):
        from repro.utils.validation import drift_budget_error

        message = drift_budget_error(
            None, 8, route_cache_label="'route_cache':", budget_label="'drift_budget'"
        )
        assert message == "'drift_budget' requires 'route_cache': approx"

    def test_shards_error(self):
        from repro.utils.validation import shards_error

        assert shards_error(None) is None
        assert shards_error(1) is None
        assert "--shards must be >= 1, got 0" == shards_error(0)
        assert "shards=" in shards_error(0, label="shards=")


class TestJobRecordSchema:
    @staticmethod
    def valid() -> dict:
        return {
            "job_version": 1,
            "job_id": "a" * 64,
            "name": "fig4_smoke",
            "state": "queued",
            "scenario": {
                "scenario_version": 1,
                "name": "fig4_smoke",
                "description": "",
                "case": "case1",
                "scale": "smoke",
                "overrides": {},
                "run": {},
            },
            "submitted_s": 1.0,
            "started_s": None,
            "finished_s": None,
            "attempts": 0,
            "error": None,
            "result_file": None,
            "manifest_file": None,
        }

    def test_accepts_valid_record(self):
        from repro.utils.validation import validate_job_record

        assert validate_job_record(self.valid())["state"] == "queued"

    def test_rejects_missing_and_extra_keys(self):
        from repro.utils.validation import validate_job_record

        payload = self.valid()
        payload.pop("attempts")
        with pytest.raises(ValueError, match="keys mismatch"):
            validate_job_record(payload)
        payload = self.valid()
        payload["extra"] = 1
        with pytest.raises(ValueError, match="keys mismatch"):
            validate_job_record(payload)

    @pytest.mark.parametrize("state", ["", "pending", "DONE", None])
    def test_rejects_unknown_states(self, state):
        from repro.utils.validation import validate_job_record

        payload = self.valid()
        payload["state"] = state
        with pytest.raises(ValueError, match="state"):
            validate_job_record(payload)

    @pytest.mark.parametrize("job_id", ["", "a" * 63, "G" * 64, 7, None])
    def test_rejects_bad_job_ids(self, job_id):
        from repro.utils.validation import validate_job_record

        payload = self.valid()
        payload["job_id"] = job_id
        with pytest.raises(ValueError, match="job_id"):
            validate_job_record(payload)

    def test_rejects_invalid_embedded_scenario(self):
        from repro.utils.validation import validate_job_record

        payload = self.valid()
        payload["scenario"]["case"] = ""
        with pytest.raises(ValueError, match="scenario"):
            validate_job_record(payload)

    @pytest.mark.parametrize("field", ["started_s", "finished_s"])
    def test_timestamps_may_be_null_but_not_nan(self, field):
        from repro.utils.validation import validate_job_record

        payload = self.valid()
        payload[field] = float("nan")
        with pytest.raises(ValueError, match=field):
            validate_job_record(payload)

    @pytest.mark.parametrize("field", ["error", "result_file", "manifest_file"])
    def test_optional_strings_reject_empty(self, field):
        from repro.utils.validation import validate_job_record

        payload = self.valid()
        payload[field] = ""
        with pytest.raises(ValueError, match=field):
            validate_job_record(payload)

"""Unit tests for the validation helpers."""

from __future__ import annotations

import pytest

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)


@pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
def test_probability_accepts_unit_interval(value):
    assert check_probability(value, "p") == value


@pytest.mark.parametrize("value", [-0.01, 1.01, 2])
def test_probability_rejects_outside(value):
    with pytest.raises(ValueError, match="p must be"):
        check_probability(value, "p")


def test_fraction_rejects_zero():
    with pytest.raises(ValueError):
        check_fraction(0.0, "f")


def test_fraction_accepts_one():
    assert check_fraction(1.0, "f") == 1.0


@pytest.mark.parametrize("value", [1e-9, 1, 100])
def test_positive_accepts(value):
    assert check_positive(value, "x") == value


@pytest.mark.parametrize("value", [0, -1])
def test_positive_rejects(value):
    with pytest.raises(ValueError):
        check_positive(value, "x")


def test_non_negative_accepts_zero():
    assert check_non_negative(0, "x") == 0


def test_non_negative_rejects_negative():
    with pytest.raises(ValueError):
        check_non_negative(-0.5, "x")


class TestCheckpointManifestSchema:
    """Exact-key contract for checkpoint manifests (gen*.json)."""

    @staticmethod
    def valid() -> dict:
        return {
            "checkpoint_version": 1,
            "config_hash": "ab" * 32,
            "replication": 3,
            "generation": 42,
            "state_file": "gen000042.pkl",
            "state_sha256": "0" * 64,
        }

    def test_valid_payload_passes(self):
        from repro.utils.validation import (
            CHECKPOINT_KEYS,
            validate_checkpoint_manifest,
        )

        payload = self.valid()
        assert validate_checkpoint_manifest(payload) == payload
        assert set(payload) == CHECKPOINT_KEYS

    def test_rejects_non_mapping(self):
        from repro.utils.validation import validate_checkpoint_manifest

        with pytest.raises(ValueError, match="JSON object"):
            validate_checkpoint_manifest([1, 2])

    def test_rejects_missing_and_extra_keys(self):
        from repro.utils.validation import validate_checkpoint_manifest

        payload = self.valid()
        del payload["state_sha256"]
        payload["bonus"] = 1
        with pytest.raises(ValueError, match="keys mismatch"):
            validate_checkpoint_manifest(payload)

    @pytest.mark.parametrize("version", [0, 2, "1", True, None])
    def test_rejects_wrong_version(self, version):
        from repro.utils.validation import validate_checkpoint_manifest

        payload = self.valid()
        payload["checkpoint_version"] = version
        with pytest.raises(ValueError, match="checkpoint_version"):
            validate_checkpoint_manifest(payload)

    @pytest.mark.parametrize("field", ["replication", "generation"])
    @pytest.mark.parametrize("bad", [-1, 1.5, "3", True, None])
    def test_rejects_non_counting_ints(self, field, bad):
        from repro.utils.validation import validate_checkpoint_manifest

        payload = self.valid()
        payload[field] = bad
        with pytest.raises(ValueError, match=field):
            validate_checkpoint_manifest(payload)

    @pytest.mark.parametrize(
        "digest", ["", "0" * 63, "Z" * 64, "A" * 64, None, 7]
    )
    def test_rejects_bad_digest(self, digest):
        from repro.utils.validation import validate_checkpoint_manifest

        payload = self.valid()
        payload["state_sha256"] = digest
        with pytest.raises(ValueError, match="state_sha256"):
            validate_checkpoint_manifest(payload)

    @pytest.mark.parametrize("field", ["config_hash", "state_file"])
    def test_rejects_empty_strings(self, field):
        from repro.utils.validation import validate_checkpoint_manifest

        payload = self.valid()
        payload[field] = ""
        with pytest.raises(ValueError, match=field):
            validate_checkpoint_manifest(payload)

"""Tests for the mobility factory and the emergency nearest-peer attach.

``mobility/factory.py`` is the wiring layer between :class:`MobilityConfig`
and the oracle stack; the emergency power boost (an isolated source raising
transmit power until its nearest participating peer hears it) is the
mobile oracle's last-resort routability guarantee.  Both were previously
exercised only incidentally.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.mobility import MobilityConfig
from repro.mobility import (
    DynamicTopology,
    GaussMarkov,
    MobilePathOracle,
    NodeChurn,
    RandomWaypoint,
    build_model,
    build_oracle,
    build_topology,
)
from repro.network.provider import ApproxPolicy, ExactPolicy

IDS = list(range(16))


class TestBuildModel:
    def test_waypoint(self):
        config = MobilityConfig(
            model="waypoint", speed_min=0.01, speed_max=0.05, pause_time=3.0
        )
        model = build_model(config)
        assert isinstance(model, RandomWaypoint)
        assert model.speed_min == 0.01
        assert model.speed_max == 0.05
        assert model.pause_time == 3.0

    def test_gauss_markov(self):
        config = MobilityConfig(
            model="gauss-markov",
            mean_speed=0.02,
            alpha=0.7,
            speed_sigma=0.004,
            direction_sigma=0.5,
        )
        model = build_model(config)
        assert isinstance(model, GaussMarkov)
        assert model.mean_speed == 0.02
        assert model.alpha == 0.7

    def test_churn_wraps_base_model(self):
        config = MobilityConfig(
            model="waypoint", churn_leave=0.1, churn_return=0.4
        )
        model = build_model(config)
        assert isinstance(model, NodeChurn)
        assert isinstance(model.model, RandomWaypoint)
        assert model.leave_prob == 0.1
        assert model.return_prob == 0.4

    def test_none_model_rejected(self):
        with pytest.raises(ValueError, match="RandomPathOracle"):
            build_model(MobilityConfig())


class TestBuildTopologyAndOracle:
    def test_build_topology_passes_range_and_tolerance(self):
        config = MobilityConfig(
            model="waypoint", radio_range=0.5, tolerance=0.03
        )
        topo = build_topology(config, IDS, np.random.default_rng(0))
        assert isinstance(topo, DynamicTopology)
        assert topo.radio_range == 0.5
        assert topo.tolerance == 0.03
        assert topo.node_ids == IDS

    def test_build_oracle_wires_route_cache_exact_default(self):
        config = MobilityConfig(model="waypoint", radio_range=0.5)
        oracle = build_oracle(config, IDS, np.random.default_rng(0))
        assert isinstance(oracle, MobilePathOracle)
        assert oracle.route_cache == "exact"
        assert isinstance(oracle.provider.policy, ExactPolicy)
        assert oracle.provider.policy.budget == 0

    def test_build_oracle_wires_approx_policy_and_budget(self):
        config = MobilityConfig(
            model="waypoint",
            radio_range=0.5,
            route_cache="approx",
            drift_budget=17,
        )
        oracle = build_oracle(config, IDS, np.random.default_rng(0))
        assert oracle.route_cache == "approx"
        assert isinstance(oracle.provider.policy, ApproxPolicy)
        assert oracle.provider.policy.budget == 17

    def test_config_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="route_cache"):
            MobilityConfig(model="waypoint", route_cache="fuzzy")

    def test_config_rejects_negative_budget(self):
        with pytest.raises(ValueError, match="drift_budget"):
            MobilityConfig(model="waypoint", drift_budget=-1)

    def test_config_round_trips_new_fields(self):
        config = MobilityConfig(
            model="waypoint", route_cache="approx", drift_budget=3
        )
        clone = MobilityConfig.from_dict(config.to_dict())
        assert clone == config


def isolated_scope_oracle(seed=11):
    """An oracle plus a scope in which node 0 has no in-range peer.

    The scope keeps node 0 (the source) and only nodes outside its radio
    neighbourhood, so any route from 0 must ride the emergency power boost
    (virtual nearest-peer attach).
    """
    model = RandomWaypoint(0.0, 0.0)  # stationary: the scope stays isolated
    topo = DynamicTopology(
        IDS, 0.45, model, np.random.default_rng(seed)
    )
    neighbours = set(topo.graph[0])
    scope = [n for n in IDS if n not in neighbours]
    oracle = MobilePathOracle(topo, np.random.default_rng(seed + 1))
    return oracle, scope, neighbours


class TestEmergencyNearestPeerAttach:
    def test_draw_succeeds_for_isolated_source(self):
        oracle, scope, _ = isolated_scope_oracle()
        assert len(scope) >= 3, "scope too small to route in"
        topo = oracle.topology
        setup = oracle.draw(0, scope)
        assert topo.boost_count > 0
        assert setup.source == 0
        assert setup.destination in scope
        for path in setup.paths:
            assert set(path) <= set(scope)

    def test_boost_attaches_the_nearest_in_scope_peer(self):
        oracle, scope, _ = isolated_scope_oracle()
        topo = oracle.topology
        positions = topo.position_array()
        d2 = np.sum((positions - positions[0]) ** 2, axis=1)
        in_scope = [n for n in scope if n != 0]
        nearest = min(in_scope, key=lambda n: d2[n])
        assert topo._nearest_peer(0, frozenset(scope)) == nearest
        # every boosted route leaves the source through that peer
        for destination in in_scope:
            paths = topo.candidate_paths(0, destination, 3, 10, frozenset(scope))
            for path in paths:
                first_hop = path[0] if path else destination
                assert first_hop == nearest or destination == nearest

    def test_nearest_peer_respects_scope(self):
        oracle, scope, neighbours = isolated_scope_oracle()
        topo = oracle.topology
        # unrestricted, the nearest peer is a radio neighbour; in scope it
        # cannot be (they are all excluded)
        unrestricted = topo._nearest_peer(0, None)
        assert unrestricted in neighbours
        scoped = topo._nearest_peer(0, frozenset(scope))
        assert scoped not in neighbours

    def test_boosted_routes_never_cached(self):
        oracle, scope, _ = isolated_scope_oracle()
        for _ in range(10):
            oracle.draw(0, scope)
        assert all(pair[0] != 0 for pair in oracle._cache)

    def test_unroutable_when_no_peer_in_scope(self):
        oracle, _, _ = isolated_scope_oracle()
        neighbour_free = [0]
        with pytest.raises(ValueError, match="destination"):
            oracle.draw(0, neighbour_free)

"""Unit and property tests for activity classification (§3.2)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.activity import Activity
from repro.reputation.activity import ActivityClassifier
from repro.reputation.records import ReputationTable


def table_with(pf_by_subject: dict[int, int]) -> ReputationTable:
    t = ReputationTable()
    for subject, pf in pf_by_subject.items():
        if pf == 0:
            t.record(subject, False)  # known, nothing forwarded
        for _ in range(pf):
            t.record(subject, True)
    return t


class TestClassifyValue:
    CLS = ActivityClassifier()

    @pytest.mark.parametrize(
        "forwarded,average,expected",
        [
            (10, 10, Activity.MI),
            (8, 10, Activity.MI),  # exactly on the lower edge (inclusive)
            (12, 10, Activity.MI),  # exactly on the upper edge (inclusive)
            (7.9, 10, Activity.LO),
            (12.1, 10, Activity.HI),
            (0, 0, Activity.MI),
            (1, 0, Activity.HI),
        ],
    )
    def test_band(self, forwarded, average, expected):
        assert self.CLS.classify_value(forwarded, average) == expected

    def test_custom_band(self):
        wide = ActivityClassifier(band=0.5)
        assert wide.classify_value(6, 10) == Activity.MI
        assert wide.classify_value(4.9, 10) == Activity.LO

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            ActivityClassifier(band=-0.1)


class TestClassifyFromTable:
    CLS = ActivityClassifier()

    def test_average_over_known_nodes(self):
        # pf: {1: 2, 2: 10, 3: 6} -> av = 6
        t = table_with({1: 2, 2: 10, 3: 6})
        assert self.CLS.classify(t, 1) == Activity.LO  # 2 < 4.8
        assert self.CLS.classify(t, 2) == Activity.HI  # 10 > 7.2
        assert self.CLS.classify(t, 3) == Activity.MI  # within [4.8, 7.2]

    def test_single_known_node_is_medium(self):
        t = table_with({1: 5})
        assert self.CLS.classify(t, 1) == Activity.MI

    def test_unknown_source_raises(self):
        with pytest.raises(KeyError):
            self.CLS.classify(ReputationTable(), 9)

    def test_source_included_in_average(self):
        """§3.2 says "all known nodes" — the source itself counts."""
        t = table_with({1: 0, 2: 12})
        # av = 6; source 1 has pf 0 -> LO; source 2 has 12 > 7.2 -> HI
        assert self.CLS.classify(t, 1) == Activity.LO
        assert self.CLS.classify(t, 2) == Activity.HI


class TestProperties:
    @given(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
    )
    def test_always_returns_a_level(self, forwarded, average):
        level = ActivityClassifier().classify_value(forwarded, average)
        assert level in (Activity.LO, Activity.MI, Activity.HI)

    @given(
        st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
        st.floats(min_value=0, max_value=2.0, allow_nan=False),
    )
    def test_monotone_in_forwarded(self, average, band):
        """More forwarding never lowers the activity level."""
        cls = ActivityClassifier(band=band)
        lo = cls.classify_value(average * 0.5, average)
        mid = cls.classify_value(average, average)
        hi = cls.classify_value(average * 2.0, average)
        assert lo <= mid <= hi

    @given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
    def test_average_itself_is_always_medium(self, average):
        assert ActivityClassifier().classify_value(average, average) == Activity.MI

"""Tests for the route-provider layer (cache policies, providers).

The drift-budget boundary case is acceptance-critical: ``approx`` with a
budget of 0 must be bit-identical to ``exact`` — same served routes, same
RNG consumption, same trajectories — because the freshness floor degenerates
to "current epoch only" and lazy revalidation is disabled.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.mobility import ROUTE_CACHE_POLICIES as CONFIG_POLICIES
from repro.game.stats import TournamentStats
from repro.mobility import DynamicTopology, MobilePathOracle, RandomWaypoint
from repro.network.provider import (
    ROUTE_CACHE_POLICIES,
    ApproxPolicy,
    CachePolicy,
    ExactPolicy,
    RouteProvider,
    StaticRouteProvider,
    TopologyProvider,
    make_cache_policy,
)
from repro.network.topology import GeometricTopology, TopologyPathOracle
from repro.sim import BIT_IDENTICAL_ENGINES, make_engine

N = 20
RADIO = 0.45
IDS = list(range(N))


def make_topology(seed=0, speed=(0.01, 0.06), tolerance=0.0):
    model = RandomWaypoint(*speed, pause_time=0.0)
    return DynamicTopology(
        IDS, RADIO, model, np.random.default_rng(seed), tolerance=tolerance
    )


def make_oracle(seed=0, **kwargs) -> MobilePathOracle:
    topo = make_topology(seed)
    return MobilePathOracle(topo, np.random.default_rng(seed + 1), **kwargs)


class TestCachePolicies:
    def test_registry_names(self):
        assert ROUTE_CACHE_POLICIES == ("exact", "approx")

    def test_config_mirror_stays_in_lockstep(self):
        """config.mobility mirrors the provider registry (import-cycle
        avoidance); this test is the lockstep guarantee."""
        assert CONFIG_POLICIES == ROUTE_CACHE_POLICIES

    def test_make_cache_policy(self):
        exact = make_cache_policy("exact")
        assert isinstance(exact, ExactPolicy)
        assert exact.budget == 0
        approx = make_cache_policy("approx", drift_budget=5)
        assert isinstance(approx, ApproxPolicy)
        assert approx.budget == 5

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown route-cache policy"):
            make_cache_policy("sloppy")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="drift budget"):
            ApproxPolicy(-1)
        with pytest.raises(ValueError, match="drift budget"):
            CachePolicy(name="custom", budget=-3)


class TestTopologyProviderProtocol:
    def test_both_topologies_satisfy_the_protocol(self):
        static = GeometricTopology(IDS, RADIO, np.random.default_rng(0))
        dynamic = make_topology()
        for topo in (static, dynamic):
            assert isinstance(topo, TopologyProvider)
            assert isinstance(topo.epoch, int)

    def test_static_epoch_moves_only_on_invalidation(self):
        topo = GeometricTopology(IDS, RADIO, np.random.default_rng(0))
        assert topo.epoch == 0
        topo.invalidate_routes()
        assert topo.epoch == 1

    def test_static_provider_drops_caches_on_invalidation(self):
        topo = GeometricTopology(IDS, RADIO, np.random.default_rng(0))
        provider = StaticRouteProvider(topo, 3, 10)
        provider.rescope(IDS)
        provider.routes(0, IDS[-1])
        assert provider.cache_misses > 0
        topo.graph.add_edge(0, IDS[-1])
        topo.invalidate_routes()
        provider.sync()
        misses = provider.cache_misses
        provider.rescope(IDS)
        provider.routes(0, IDS[-1])
        assert provider.cache_misses > misses  # recomputed, not served stale


class TestRouteProviderPolicies:
    def _provider(self, topo, policy):
        provider = RouteProvider(topo, 3, 10, policy)
        provider.rescope(IDS)
        provider.sync()
        return provider

    def _force_epoch_change(self, topo):
        epoch = topo.epoch
        for _ in range(200):
            topo.step()
            if topo.epoch != epoch:
                return
        raise AssertionError("topology never changed its edge set")

    def test_exact_recomputes_after_epoch_change(self):
        topo = make_topology()
        provider = self._provider(topo, ExactPolicy())
        provider.routes(0, 5)
        misses = provider.cache_misses
        provider.routes(0, 5)
        assert provider.cache_misses == misses  # in-epoch hit
        self._force_epoch_change(topo)
        provider.sync()
        provider.routes(0, 5)
        assert provider.cache_misses == misses + 1
        assert provider.stale_hits == 0

    def test_approx_serves_stale_inside_budget(self):
        topo = make_topology()
        provider = self._provider(topo, ApproxPolicy(drift_budget=10**6))
        first = provider.routes(0, 5)
        misses = provider.cache_misses
        self._force_epoch_change(topo)
        provider.sync()
        assert provider.routes(0, 5) == first  # identical stale object
        assert provider.cache_misses == misses
        assert provider.stale_hits == 1

    def test_approx_budget_counts_epochs(self):
        topo = make_topology()
        provider = self._provider(topo, ApproxPolicy(drift_budget=1))
        provider.routes(0, 5)
        misses = provider.cache_misses
        self._force_epoch_change(topo)
        provider.sync()
        provider.routes(0, 5)
        assert provider.cache_misses == misses  # age 1 <= budget 1
        self._force_epoch_change(topo)
        self._force_epoch_change(topo)
        provider.sync()
        provider.routes(0, 5)
        # age past budget: either lazily revalidated (cheap, re-stamped) or
        # recomputed — never served blindly
        assert provider.cache_misses + provider.revalidations == misses + 1

    def test_scope_change_clears_cache(self):
        topo = make_topology()
        provider = self._provider(topo, ApproxPolicy(5))
        provider.routes(0, 5)
        misses = provider.cache_misses
        provider.rescope(IDS[: N // 2])
        provider.routes(0, 5)
        assert provider.cache_misses == misses + 1

    def test_revalidation_restamps_surviving_routes(self):
        """A stale-past-budget entry whose routes all survived is re-stamped
        by the cheap edge recheck instead of recomputed."""
        topo = make_topology(speed=(0.0, 0.0))  # nobody moves...
        provider = self._provider(topo, ApproxPolicy(drift_budget=0))
        # budget 0 disables revalidation (the exact-equivalence boundary)
        assert provider._revalidate is False
        provider = self._provider(topo, ApproxPolicy(drift_budget=1))
        first = provider.routes(0, 5)
        assert first
        misses = provider.cache_misses
        # an artificial epoch bump with the graph untouched: every cached
        # route survives, so revalidation must win over recomputation
        topo.epoch += 2
        provider.sync()
        assert provider.routes(0, 5) == first
        assert provider.revalidations == 1
        assert provider.cache_misses == misses
        # re-stamped: the follow-up access is a plain fresh hit
        hits = provider.cache_hits
        provider.routes(0, 5)
        assert provider.cache_hits == hits + 1
        assert provider.revalidations == 1

    def test_revalidation_drops_broken_routes(self):
        topo = make_topology(speed=(0.0, 0.0))
        provider = self._provider(topo, ApproxPolicy(drift_budget=1))
        first = provider.routes(0, 5)
        assert first
        # break the first route's first edge behind the provider's back
        intermediate = first[0][0]
        topo.graph.remove_edge(0, intermediate)
        topo.epoch += 2
        provider.sync()
        served = provider.routes(0, 5)
        for path in served:
            assert path != first[0] or 0 in topo.graph.adj[intermediate]

    def test_search_time_is_accounted(self):
        topo = make_topology()
        provider = self._provider(topo, ExactPolicy())
        provider.routes(0, 5)
        assert provider.search_s > 0.0


class TestDriftBudgetBoundary:
    """budget 0 must make ``approx`` bit-identical to ``exact``."""

    def _draw_stream(self, route_cache, drift_budget, draws=300):
        oracle = make_oracle(
            seed=3,
            step_every="round",
            route_cache=route_cache,
            drift_budget=drift_budget,
        )
        setups = [oracle.draw(i % N, IDS) for i in range(draws)]
        return setups, oracle.rng.bit_generator.state, oracle.topology.epoch

    def test_budget_zero_bit_identical_to_exact(self):
        exact_setups, exact_state, exact_epoch = self._draw_stream("exact", 0)
        approx_setups, approx_state, approx_epoch = self._draw_stream("approx", 0)
        assert exact_setups == approx_setups
        assert exact_state == approx_state
        assert exact_epoch == approx_epoch

    def test_nonzero_budget_actually_diverges_routes(self):
        """Sanity for the boundary test: with a real budget the policies do
        serve different routes eventually (else the boundary test proves
        nothing)."""
        exact_setups, _, _ = self._draw_stream("exact", 0)
        approx_setups, _, _ = self._draw_stream("approx", 10**6)
        assert exact_setups != approx_setups

    @pytest.mark.parametrize("engine_name", BIT_IDENTICAL_ENGINES)
    def test_budget_zero_engine_trajectories_match_exact(self, engine_name):
        stats = {}
        for route_cache in ("exact", "approx"):
            oracle = make_oracle(
                seed=7, route_cache=route_cache, drift_budget=0
            )
            engine = make_engine(engine_name, N, 0)
            rng = np.random.default_rng(13)
            from repro.core.strategy import Strategy

            engine.set_strategies([Strategy.random(rng) for _ in range(N)])
            s = TournamentStats()
            engine.run_tournament(IDS, 8, oracle, s, None, None)
            stats[route_cache] = (s.to_dict(), engine.fitness().tolist())
        assert stats["exact"] == stats["approx"]


class TestStaticProviderModes:
    def test_uncached_mode_recomputes_and_filters(self):
        topo = GeometricTopology(IDS, RADIO, np.random.default_rng(2))
        provider = StaticRouteProvider(topo, 3, 10, cache=False)
        provider.rescope(IDS)
        a = provider.routes(0, 5)
        misses = provider.cache_misses
        b = provider.routes(0, 5)
        assert a == b
        assert provider.cache_misses > misses

    def test_scoped_routes_filter_to_participants(self):
        topo = GeometricTopology(IDS, RADIO, np.random.default_rng(2))
        provider = StaticRouteProvider(topo, 3, 10)
        scope = IDS[::2]
        provider.rescope(scope)
        active = set(scope)
        for destination in scope[1:]:
            for path in provider.routes(0, destination):
                assert set(path) <= active

    def test_oracle_uses_provider(self):
        topo = GeometricTopology(IDS, RADIO, np.random.default_rng(2))
        oracle = TopologyPathOracle(topo, np.random.default_rng(3))
        assert isinstance(oracle.provider, StaticRouteProvider)
        oracle.draw(0, IDS)
        assert oracle.cache_info == oracle.provider.cache_info

"""Unit tests for ExperimentConfig."""

from __future__ import annotations

import pytest

from repro.config.parameters import GAConfig, SimulationConfig
from repro.experiments.cases import get_case
from repro.experiments.config import SCALES, ExperimentConfig


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"paper", "default", "smoke"}

    def test_paper_scale_matches_section61(self):
        generations, rounds, replications = SCALES["paper"]
        assert (generations, rounds, replications) == (500, 300, 60)


class TestForCase:
    def test_builds_from_case_name(self):
        cfg = ExperimentConfig.for_case("case3", scale="smoke")
        assert cfg.case.name == "case3"
        assert cfg.generations == SCALES["smoke"][0]
        assert cfg.sim.rounds == SCALES["smoke"][1]
        assert cfg.replications == SCALES["smoke"][2]

    def test_accepts_case_object(self):
        cfg = ExperimentConfig.for_case(get_case("case1"), scale="smoke")
        assert cfg.case.name == "case1"

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            ExperimentConfig.for_case("case1", scale="huge")

    def test_overrides(self):
        cfg = ExperimentConfig.for_case(
            "case1", scale="smoke", generations=7, seed=99, engine="reference"
        )
        assert cfg.generations == 7
        assert cfg.seed == 99
        assert cfg.engine == "reference"

    def test_path_mode_synced_to_case(self):
        cfg = ExperimentConfig.for_case("case4", scale="smoke")
        assert cfg.sim.path_mode == "longer"

    def test_path_mode_mismatch_corrected(self):
        cfg = ExperimentConfig(
            case=get_case("case4"), sim=SimulationConfig(path_mode="shorter")
        )
        assert cfg.sim.path_mode == "longer"


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"generations": 0},
            {"replications": 0},
            {"engine": "warp"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(case=get_case("case1"), **kwargs)

    def test_population_must_cover_environment(self):
        with pytest.raises(ValueError, match="population"):
            ExperimentConfig(
                case=get_case("case1"), ga=GAConfig(population_size=10)
            )


class TestDescribe:
    def test_describe_is_json_friendly(self):
        import json

        cfg = ExperimentConfig.for_case("case2", scale="smoke")
        desc = cfg.describe()
        text = json.dumps(desc)
        assert "case2" in text
        assert desc["environments"][0]["n_selfish"] == 30

    def test_with_(self):
        cfg = ExperimentConfig.for_case("case1", scale="smoke")
        assert cfg.with_(seed=5).seed == 5


class TestMobilitySync:
    def test_mobile_case_pulls_preset_into_sim(self):
        cfg = ExperimentConfig.for_case("mobile_waypoint", scale="smoke")
        assert cfg.sim.mobility.model == "waypoint"
        cfg = ExperimentConfig.for_case("mobile_gauss", scale="smoke")
        assert cfg.sim.mobility.model == "gauss-markov"

    def test_explicit_sim_mobility_wins_over_case_preset(self):
        from repro.config.mobility import MobilityConfig
        from repro.config.parameters import SimulationConfig

        custom = MobilityConfig(model="gauss-markov", mean_speed=0.2)
        cfg = ExperimentConfig.for_case(
            "mobile_waypoint", scale="smoke", sim=SimulationConfig(mobility=custom)
        )
        assert cfg.sim.mobility == custom

    def test_paper_cases_stay_on_random_oracle(self):
        cfg = ExperimentConfig.for_case("case1", scale="smoke")
        assert not cfg.sim.mobility.enabled

    def test_describe_records_mobility(self):
        cfg = ExperimentConfig.for_case("mobile_waypoint", scale="smoke")
        desc = cfg.describe()
        assert desc["sim"]["mobility"]["model"] == "waypoint"

"""Unit tests for the reproduction registry."""

from __future__ import annotations

import pytest

from repro.experiments.registry import ARTEFACTS, ReproductionSession


class TestRegistryCompleteness:
    def test_every_paper_artefact_present(self):
        """DESIGN.md's experiment index: Fig. 4 and Tables 5-9 must all have
        a registered reproduction (Tables 1-4 are parameter presets tested in
        test_config_presets; Figs. 1-2 are executable examples).  "mobility"
        is the extension artefact comparing network mobility regimes."""
        assert set(ARTEFACTS) == {
            "fig4",
            "table5",
            "table6",
            "table7",
            "table8",
            "table9",
            "mobility",
            "exchange",
        }

    def test_specs_are_well_formed(self):
        for aid, spec in ARTEFACTS.items():
            assert spec.artefact_id == aid
            assert spec.title
            assert spec.cases
            assert callable(spec.render)
            assert aid in str(spec) or spec.title in str(spec)

    def test_cases_referenced_exist(self):
        from repro.experiments.cases import ALL_CASES

        for spec in ARTEFACTS.values():
            for case in spec.cases:
                assert case in ALL_CASES


class TestReproductionSession:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            ReproductionSession(scale="galactic")

    def test_unknown_artefact_rejected(self):
        session = ReproductionSession(scale="smoke")
        with pytest.raises(KeyError, match="unknown artefact"):
            session.render("fig99")

    def test_result_for_caches(self):
        session = ReproductionSession(scale="smoke", processes=1)
        a = session.result_for("case1")
        b = session.result_for("case1")
        assert a is b

    def test_render_artefact_smoke(self):
        session = ReproductionSession(scale="smoke", processes=1)
        out = session.render("table5")
        assert "Table 5" in out

    def test_disk_cache_roundtrip(self, tmp_path):
        session = ReproductionSession(scale="smoke", processes=1, cache_dir=tmp_path)
        first = session.result_for("case1")
        assert (tmp_path / "case1_smoke_seed2007.json").exists()
        # a fresh session loads from disk instead of re-simulating
        session2 = ReproductionSession(scale="smoke", processes=1, cache_dir=tmp_path)
        second = session2.result_for("case1")
        assert second.to_dict() == first.to_dict()

    def test_config_for(self):
        session = ReproductionSession(scale="smoke", seed=1, engine="reference")
        cfg = session.config_for("case2")
        assert cfg.seed == 1
        assert cfg.engine == "reference"
        assert cfg.case.name == "case2"

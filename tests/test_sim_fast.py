"""Unit tests specific to the fast engine (construction, guards, state)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategy import Strategy
from repro.game.stats import TournamentStats
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.reputation.exchange import ExchangeConfig
from repro.reputation.trust import TrustTable
from repro.sim import make_engine
from repro.sim.fast import FastEngine


class TestConstruction:
    def test_population_ids(self):
        engine = FastEngine(8, 3)
        assert list(engine.population_ids) == list(range(8))

    def test_selfish_ids_follow_population_block(self):
        engine = FastEngine(8, 3)
        assert engine.selfish_ids(2) == [8, 9]
        assert engine.selfish_ids(0) == []

    def test_selfish_overflow_rejected(self):
        with pytest.raises(ValueError):
            FastEngine(8, 3).selfish_ids(4)

    def test_strategy_count_enforced(self):
        engine = FastEngine(4, 0)
        with pytest.raises(ValueError):
            engine.set_strategies([Strategy.all_forward()])

    def test_requires_four_trust_levels(self):
        with pytest.raises(ValueError, match="4 trust levels"):
            FastEngine(4, 0, trust_table=TrustTable(bounds=(0.5,)))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            FastEngine(0, 1)
        with pytest.raises(ValueError):
            FastEngine(4, -1)


class TestGuards:
    def test_exchange_requires_rng(self, rng):
        engine = FastEngine(6, 0)
        engine.set_strategies([Strategy.all_forward()] * 6)
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        with pytest.raises(ValueError, match="requires an rng"):
            engine.run_tournament(
                list(range(6)),
                2,
                oracle,
                TournamentStats(),
                ExchangeConfig(enabled=True),
                None,
            )

    def test_exchange_enabled_widens_knowledge(self, rng):
        """Gossip must reach the flat state: more known pairs than without."""

        def known_pairs(exchange, rng_seed=3):
            engine = FastEngine(10, 0)
            engine.set_strategies([Strategy.all_forward()] * 10)
            oracle = RandomPathOracle(np.random.default_rng(rng_seed), SHORTER_PATHS)
            engine.run_tournament(
                list(range(10)),
                1,
                oracle,
                TournamentStats(),
                exchange,
                np.random.default_rng(rng_seed + 1),
            )
            return int((np.asarray(engine.ps) > 0).sum())

        gossip = ExchangeConfig(
            enabled=True, interval=1, fanout=3, positive_only=False
        )
        assert known_pairs(gossip) > known_pairs(None)

    def test_disabled_exchange_is_fine(self, rng):
        engine = FastEngine(6, 0)
        engine.set_strategies([Strategy.all_forward()] * 6)
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        engine.run_tournament(
            list(range(6)), 2, oracle, TournamentStats(), ExchangeConfig(), None
        )

    def test_zero_rounds_rejected(self, rng):
        engine = FastEngine(6, 0)
        engine.set_strategies([Strategy.all_forward()] * 6)
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        with pytest.raises(ValueError):
            engine.run_tournament(
                list(range(6)), 0, oracle, TournamentStats(), None, None
            )


class TestState:
    def run_once(self, engine, rng_seed=3):
        oracle = RandomPathOracle(np.random.default_rng(rng_seed), SHORTER_PATHS)
        engine.run_tournament(
            list(range(engine.n_population)), 5, oracle, TournamentStats(), None, None
        )

    def test_reset_generation_clears_everything(self):
        engine = FastEngine(8, 2)
        engine.set_strategies([Strategy.all_forward()] * 8)
        self.run_once(engine)
        assert engine.payoff_matrix().sum() > 0
        engine.reset_generation()
        assert engine.payoff_matrix().sum() == 0
        assert engine.fitness().sum() == 0.0
        assert sum(engine.known) == 0
        assert sum(engine.pf_sum) == 0

    def test_known_matches_matrix(self):
        engine = FastEngine(8, 2)
        engine.set_strategies([Strategy.all_forward()] * 8)
        self.run_once(engine)
        matrix = engine.payoff_matrix()
        for observer in range(engine.m):
            assert engine.known[observer] == int((matrix[observer, :, 0] > 0).sum())
            assert engine.pf_sum[observer] == int(matrix[observer, :, 1].sum())

    def test_fitness_zero_for_non_participants(self):
        engine = FastEngine(8, 0)
        engine.set_strategies([Strategy.all_forward()] * 8)
        oracle = RandomPathOracle(np.random.default_rng(1), SHORTER_PATHS)
        engine.run_tournament(list(range(4)), 5, oracle, TournamentStats(), None, None)
        fitness = engine.fitness()
        assert (fitness[:4] > 0).all()
        assert (fitness[4:] == 0).all()


class TestFactory:
    def test_make_engine_names(self):
        assert make_engine("fast", 4, 0).name == "fast"
        assert make_engine("reference", 4, 0).name == "reference"
        assert make_engine("turbo", 4, 0).name == "turbo"

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_engine("warp", 4, 0)

"""Unit tests for the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config.parameters import GAConfig, SimulationConfig
from repro.core.payoff import PayoffConfig
from repro.reputation.exchange import ExchangeConfig


class TestGAConfig:
    def test_paper_defaults(self):
        cfg = GAConfig()
        assert cfg.population_size == 100
        assert cfg.crossover_rate == 0.9
        assert cfg.mutation_rate == 0.001
        assert cfg.selection == "tournament"
        assert cfg.elitism == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"crossover_rate": 1.5},
            {"mutation_rate": -0.1},
            {"selection": "rank"},
            {"tournament_size": 0},
            {"elitism": 200},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GAConfig(**kwargs)

    def test_dict_roundtrip(self):
        cfg = GAConfig(population_size=20, selection="roulette")
        assert GAConfig.from_dict(cfg.to_dict()) == cfg

    def test_with_(self):
        cfg = GAConfig().with_(mutation_rate=0.01)
        assert cfg.mutation_rate == 0.01
        assert cfg.crossover_rate == 0.9


class TestSimulationConfig:
    def test_paper_defaults(self):
        cfg = SimulationConfig()
        assert cfg.rounds == 300
        assert cfg.plays_per_environment == 1
        assert cfg.path_mode == "shorter"
        assert cfg.trust_bounds == (0.3, 0.6, 0.9)
        assert cfg.activity_band == 0.2
        assert cfg.payoffs == PayoffConfig()
        assert not cfg.exchange.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rounds": 0},
            {"plays_per_environment": 0},
            {"path_mode": "medium"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)

    def test_dict_roundtrip(self):
        cfg = SimulationConfig(
            rounds=50,
            path_mode="longer",
            payoffs=PayoffConfig(source_success=10.0),
            exchange=ExchangeConfig(enabled=True, fanout=3),
        )
        restored = SimulationConfig.from_dict(cfg.to_dict())
        assert restored == cfg

    def test_with_(self):
        cfg = SimulationConfig().with_(rounds=42)
        assert cfg.rounds == 42
        assert cfg.path_mode == "shorter"


class TestMobilityConfig:
    def test_default_is_disabled(self):
        from repro.config.mobility import MobilityConfig

        cfg = MobilityConfig()
        assert cfg.model == "none"
        assert not cfg.enabled

    def test_embedded_dict_roundtrip(self):
        from repro.config.mobility import MobilityConfig

        cfg = SimulationConfig(
            mobility=MobilityConfig(
                model="waypoint", speed_max=0.08, churn_leave=0.05, step_every=10
            )
        )
        restored = SimulationConfig.from_dict(cfg.to_dict())
        assert restored == cfg
        assert restored.mobility.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"model": "teleport"},
            {"speed_min": 0.5, "speed_max": 0.1},
            {"pause_time": -1.0},
            {"alpha": 2.0},
            {"churn_leave": 1.5},
            {"tolerance": -0.1},
            {"max_paths": 0},
            {"step_every": "sometimes"},
            {"step_every": 0},
        ],
    )
    def test_validation(self, kwargs):
        from repro.config.mobility import MobilityConfig

        with pytest.raises(ValueError):
            MobilityConfig(**kwargs)

    def test_presets_are_consistent(self):
        from repro.config.mobility import MOBILITY_MODELS
        from repro.config.presets import MOBILITY_PRESETS, mobility_preset

        assert set(MOBILITY_PRESETS) >= {"none", "waypoint", "gauss-markov"}
        for name, preset in MOBILITY_PRESETS.items():
            assert preset.model in MOBILITY_MODELS
            assert mobility_preset(name) is preset
        assert MOBILITY_PRESETS["churn"].churn_leave > 0
        with pytest.raises(KeyError, match="unknown mobility preset"):
            mobility_preset("warp")

"""Unit tests for experiment result aggregation and persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import run_experiment


@pytest.fixture(scope="module")
def result() -> ExperimentResult:
    cfg = ExperimentConfig.for_case("case3", scale="smoke", replications=2)
    return run_experiment(cfg, processes=1)


class TestAggregation:
    def test_cooperation_matrix_shape(self, result):
        cfg_generations = ExperimentConfig.for_case("case3", scale="smoke").generations
        assert result.cooperation_matrix().shape == (2, cfg_generations)

    def test_mean_series(self, result):
        matrix = result.cooperation_matrix()
        assert np.allclose(result.mean_cooperation_series(), matrix.mean(axis=0))

    def test_final_cooperation(self, result):
        mean, std = result.final_cooperation()
        assert 0.0 <= mean <= 1.0
        assert std >= 0.0

    def test_environments(self, result):
        assert result.environments() == ["TE1", "TE2", "TE3", "TE4"]

    def test_per_env_cooperation_bounds(self, result):
        coop = result.per_env_cooperation()
        assert set(coop) == {"TE1", "TE2", "TE3", "TE4"}
        assert all(0.0 <= v <= 1.0 for v in coop.values())

    def test_per_env_csn_free(self, result):
        free = result.per_env_csn_free()
        # TE1 has no CSN, so every chosen path is CSN-free
        assert free["TE1"] == 1.0

    def test_pooled_requests(self, result):
        from_nn, from_csn = result.pooled_requests()
        assert from_nn.total > 0
        assert from_csn.total > 0

    def test_final_populations(self, result):
        pops = result.final_populations()
        assert len(pops) == 2
        assert all(len(p) == 100 for p in pops)


class TestPersistence:
    def test_save_load_roundtrip(self, result, tmp_path):
        path = result.save(tmp_path / "res.json")
        restored = ExperimentResult.load(path)
        assert restored.to_dict() == result.to_dict()

    def test_merge_runs(self, result):
        merged = ExperimentResult.merge_runs([result, result])
        assert len(merged.replications) == 4

    def test_merge_rejects_different_cases(self, result):
        other = ExperimentResult(
            config={**result.config, "case": "case1"},
            replications=result.replications,
        )
        with pytest.raises(ValueError, match="different cases"):
            ExperimentResult.merge_runs([result, other])

    def test_empty_replications_rejected(self):
        with pytest.raises(ValueError):
            ExperimentResult(config={}, replications=[])

"""Unit tests for GameResult integrity checks."""

from __future__ import annotations

import pytest

from repro.core.node import Decision
from repro.game.result import GameResult
from repro.paths.oracle import GameSetup


def decision(forward: bool) -> Decision:
    return Decision(forward=forward, trust=None, activity=None, source_known=False)


SETUP = GameSetup(source=0, destination=9, paths=((1, 2, 3), (4, 5)))


class TestGameResult:
    def test_success_needs_full_decisions(self):
        with pytest.raises(ValueError, match="decision per hop"):
            GameResult(
                setup=SETUP,
                chosen_path_index=0,
                decisions=(decision(True),),
                success=True,
            )

    def test_too_many_decisions_rejected(self):
        with pytest.raises(ValueError, match="more decisions"):
            GameResult(
                setup=SETUP,
                chosen_path_index=1,
                decisions=tuple(decision(True) for _ in range(3)),
                success=False,
            )

    def test_chosen_path(self):
        r = GameResult(
            setup=SETUP,
            chosen_path_index=1,
            decisions=(decision(True), decision(True)),
            success=True,
        )
        assert r.chosen_path == (4, 5)
        assert r.drop_index is None

    def test_dropper_resolution(self):
        r = GameResult(
            setup=SETUP,
            chosen_path_index=0,
            decisions=(decision(True), decision(False)),
            success=False,
        )
        assert r.drop_index == 1
        assert r.dropper == 2

"""Cross-replication stacked evaluation (:mod:`repro.sim.stacked`).

The load-bearing claim — stated in the module docstring and relied on by
``run_experiment``'s auto-dispatch — is **bit-identity**: evaluating R
replications as one stacked mega-slate produces, replication by
replication, exactly the :class:`ReplicationResult` the sequential fused
path produces.  The replications live in block-diagonal reputation blocks,
every conflict walk is scoped per (replication, tournament), and each
replication's rng stream sees precisely the draws it would have seen
alone, so stacking is an execution plan, never a semantics change.  These
tests pin that equality end-to-end (random paths, all environment
classes, mobile topologies), plus the eligibility rules and the engine's
own validation.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import (
    run_replication,
    run_replications_stacked,
    stacked_unsupported_reason,
)
from repro.experiments.runner import run_experiment
from repro.sim.stacked import StackedFusedEngine
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.runtime import telemetry_session


def digest(result) -> str:
    blob = json.dumps(result.to_dict(), sort_keys=True, default=float)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def smoke_config(case: str, seed: int, replications: int = 3) -> ExperimentConfig:
    return ExperimentConfig.for_case(
        case, scale="smoke", engine="fused", seed=seed, replications=replications
    )


class TestBitIdentity:
    """Stacked == sequential, replication by replication."""

    @pytest.mark.parametrize(
        "case,seed",
        [
            ("case1", 1234),  # random paths, one environment
            ("case3", 7),  # every environment class TE1-TE4
        ],
    )
    def test_matches_sequential_fused(self, case, seed):
        config = smoke_config(case, seed)
        stacked = run_replications_stacked(config)
        assert len(stacked) == config.replications
        for r in range(config.replications):
            sequential = run_replication(config, r)
            assert stacked[r].replication == r
            assert digest(stacked[r]) == digest(sequential), f"rep {r}"

    def test_matches_sequential_on_mobile_topology(self):
        # per-replication oracles replay the same mobility epochs and route
        # recomputations they would have seen alone
        config = smoke_config("mobile_gauss", seed=7, replications=2)
        stacked = run_replications_stacked(config)
        for r in range(2):
            assert digest(stacked[r]) == digest(run_replication(config, r))

    def test_telemetry_counters_attribute_the_stacking(self):
        # config-driven telemetry is ineligible (per-replication sessions),
        # but an *ambient* session — the profiler's mode — must see the
        # stacked engine's attribution counters
        config = smoke_config("case1", 1234, replications=2)
        with telemetry_session(TelemetryConfig(enabled=True)) as tel:
            run_replications_stacked(config)
            snap = tel.registry.snapshot()
        counters = snap["counters"]
        assert counters["engine.fused.stacked_replications"] == pytest.approx(
            2 * config.generations
        )
        # per-replication counting, so totals line up with what R sequential
        # fused runs would have recorded
        assert counters["engine.fused.generations"] == pytest.approx(
            2 * config.generations
        )
        assert snap["timers"]["kernel.decision_s"]["count"] > 0


class TestEligibility:
    def test_eligible_config_has_no_reason(self):
        assert stacked_unsupported_reason(smoke_config("case1", 1)) is None

    @pytest.mark.parametrize(
        "mutate,fragment",
        [
            (lambda c: c.with_(engine="batch"), "does not fuse"),
            (lambda c: c.with_(engine="turbo"), "does not fuse"),
            (lambda c: c.with_(replications=1), "at least 2 replications"),
            (
                lambda c: c.with_(telemetry=TelemetryConfig(enabled=True)),
                "telemetry",
            ),
        ],
    )
    def test_config_reasons(self, mutate, fragment):
        config = mutate(smoke_config("case1", 1))
        reason = stacked_unsupported_reason(config)
        assert reason is not None and fragment in reason

    def test_exchange_is_ineligible(self):
        config = ExperimentConfig.for_case(
            "exchange_core", scale="smoke", engine="fused", seed=1
        ).with_(replications=2)
        reason = stacked_unsupported_reason(config)
        assert reason is not None and "exchange" in reason

    def test_execution_option_reasons(self):
        config = smoke_config("case1", 1)
        assert "shard" in stacked_unsupported_reason(config, shards=4)
        assert "checkpoint" in stacked_unsupported_reason(
            config, checkpoint_dir="ckpt"
        )
        assert "processes" in stacked_unsupported_reason(config, processes=8)

    def test_run_replications_stacked_raises_when_ineligible(self):
        with pytest.raises(ValueError, match="at least 2"):
            run_replications_stacked(smoke_config("case1", 1, replications=1))


class TestRunnerDispatch:
    def test_auto_stacks_when_eligible(self, monkeypatch):
        import repro.experiments.runner as runner_mod

        calls = []
        real = runner_mod.run_replications_stacked

        def spy(config):
            calls.append(config)
            return real(config)

        monkeypatch.setattr(runner_mod, "run_replications_stacked", spy)
        config = smoke_config("case1", 1234, replications=2)
        result = run_experiment(config, processes=1)
        assert len(calls) == 1
        assert len(result.replications) == 2

    def test_auto_falls_back_without_serial_processes(self, monkeypatch):
        import repro.experiments.runner as runner_mod

        def boom(config):  # pragma: no cover - must not be reached
            raise AssertionError("stacked path taken")

        monkeypatch.setattr(runner_mod, "run_replications_stacked", boom)
        config = smoke_config("case1", 1234, replications=2)
        run_experiment(config, processes=1, stacked=False)
        run_experiment(config)  # processes=None -> parallel per-rep path

    def test_explicit_request_raises_when_ineligible(self):
        config = smoke_config("case1", 1234, replications=2)
        with pytest.raises(ValueError, match="stacked evaluation unavailable"):
            run_experiment(config, stacked=True, shards=4)
        with pytest.raises(ValueError, match="stacked evaluation unavailable"):
            run_experiment(config.with_(engine="batch"), stacked=True)

    def test_all_three_routes_agree(self):
        config = smoke_config("case1", 99, replications=2)
        auto = run_experiment(config, processes=1)
        forced = run_experiment(config, stacked=True)
        sequential = run_experiment(config, processes=1, stacked=False)
        for a, b, c in zip(
            auto.replications, forced.replications, sequential.replications
        ):
            assert digest(a) == digest(b) == digest(c)


class TestEngineValidation:
    def _engine(self, n_replications=2, n_population=10, max_selfish=2):
        return StackedFusedEngine(
            n_population, max_selfish, n_replications=n_replications
        )

    def test_strategy_tensor_shape_checked(self):
        engine = self._engine()
        with pytest.raises(ValueError, match="strategy tensor"):
            engine.set_strategies_tensor(np.zeros((3, 10, 13), dtype=np.int8))
        with pytest.raises(ValueError, match="strategy tensor"):
            engine.set_strategies_tensor(np.zeros((2, 9, 13), dtype=np.int8))

    def test_strategy_tensor_bits_checked(self):
        engine = self._engine()
        bad = np.zeros((2, 10, 13), dtype=np.int8)
        bad[0, 0, 0] = 2
        with pytest.raises(ValueError, match="0/1"):
            engine.set_strategies_tensor(bad)

    def test_fitness_tensor_shape(self):
        engine = self._engine()
        engine.set_strategies_tensor(np.zeros((2, 10, 13), dtype=np.int8))
        engine.reset_generation()
        fitness = engine.fitness_tensor()
        assert fitness.shape == (2, 10)
        np.testing.assert_array_equal(fitness, 0.0)

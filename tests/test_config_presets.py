"""Presets vs the paper's published parameter tables (Tables 1-3, §6.1)."""

from __future__ import annotations

import pytest

from repro.config import presets
from repro.paths.distributions import LONGER_PATHS, SHORTER_PATHS


class TestSection61Constants:
    def test_ga_parameters(self):
        assert presets.PAPER_CROSSOVER_RATE == 0.9
        assert presets.PAPER_MUTATION_RATE == 0.001
        assert presets.PAPER_ROUNDS == 300
        assert presets.PAPER_GENERATIONS == 500
        assert presets.PAPER_REPLICATIONS == 60

    def test_population_and_tournament_size(self):
        assert presets.PAPER_POPULATION == 100
        assert presets.PAPER_TOURNAMENT_SIZE == 50


class TestTable1Environments:
    @pytest.mark.parametrize(
        "env,csn,normal",
        [
            (presets.TE1, 0, 50),
            (presets.TE2, 10, 40),
            (presets.TE3, 25, 25),
            (presets.TE4, 30, 20),
        ],
    )
    def test_csn_and_normal_counts(self, env, csn, normal):
        assert env.n_selfish == csn
        assert env.n_normal == normal
        assert env.tournament_size == 50

    def test_paper_environments_order(self):
        assert [e.name for e in presets.paper_environments()] == [
            "TE1",
            "TE2",
            "TE3",
            "TE4",
        ]

    def test_custom_environment_factory(self):
        env = presets.environment_with_csn(30)
        assert env.n_selfish == 30
        assert env.tournament_size == 50


class TestTable2Modes:
    def test_mode_names(self):
        assert SHORTER_PATHS.name == "shorter"
        assert LONGER_PATHS.name == "longer"

    def test_shorter_mode_dominates_short_hops(self):
        assert SHORTER_PATHS.dist.pmf(2) > LONGER_PATHS.dist.pmf(2)
        assert SHORTER_PATHS.dist.pmf(10) < LONGER_PATHS.dist.pmf(10)

"""Unit tests for the Table 4 evaluation cases."""

from __future__ import annotations

import pytest

from repro.experiments.cases import CASES, EvaluationCase, get_case
from repro.tournament.environment import TournamentEnvironment


class TestTable4:
    def test_all_four_cases_exist(self):
        assert set(CASES) == {"case1", "case2", "case3", "case4"}

    def test_case1_is_csn_free_shorter(self):
        case = get_case("case1")
        assert [e.n_selfish for e in case.environments] == [0]
        assert case.path_mode == "shorter"

    def test_case2_has_30_csn(self):
        """DESIGN.md §2.4: case 2 uses 30 CSN (60% of 50 seats)."""
        case = get_case("case2")
        assert [e.n_selfish for e in case.environments] == [30]
        assert case.environments[0].selfish_fraction == 0.6
        assert case.path_mode == "shorter"

    def test_case3_all_envs_shorter(self):
        case = get_case("case3")
        assert [e.n_selfish for e in case.environments] == [0, 10, 25, 30]
        assert case.path_mode == "shorter"

    def test_case4_all_envs_longer(self):
        case = get_case("case4")
        assert [e.name for e in case.environments] == ["TE1", "TE2", "TE3", "TE4"]
        assert case.path_mode == "longer"

    def test_max_selfish(self):
        assert get_case("case1").max_selfish == 0
        assert get_case("case3").max_selfish == 30

    def test_unknown_case(self):
        with pytest.raises(KeyError, match="case9"):
            get_case("case9")


class TestEvaluationCase:
    def test_validation(self):
        with pytest.raises(ValueError):
            EvaluationCase("x", "d", (), "shorter")
        with pytest.raises(ValueError):
            EvaluationCase(
                "x", "d", (TournamentEnvironment("A", 10, 0),), "diagonal"
            )

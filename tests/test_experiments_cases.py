"""Unit tests for the Table 4 evaluation cases."""

from __future__ import annotations

import pytest

from repro.experiments.cases import CASES, EvaluationCase, get_case
from repro.tournament.environment import TournamentEnvironment


class TestTable4:
    def test_all_four_cases_exist(self):
        assert set(CASES) == {"case1", "case2", "case3", "case4"}

    def test_case1_is_csn_free_shorter(self):
        case = get_case("case1")
        assert [e.n_selfish for e in case.environments] == [0]
        assert case.path_mode == "shorter"

    def test_case2_has_30_csn(self):
        """DESIGN.md §2.4: case 2 uses 30 CSN (60% of 50 seats)."""
        case = get_case("case2")
        assert [e.n_selfish for e in case.environments] == [30]
        assert case.environments[0].selfish_fraction == 0.6
        assert case.path_mode == "shorter"

    def test_case3_all_envs_shorter(self):
        case = get_case("case3")
        assert [e.n_selfish for e in case.environments] == [0, 10, 25, 30]
        assert case.path_mode == "shorter"

    def test_case4_all_envs_longer(self):
        case = get_case("case4")
        assert [e.name for e in case.environments] == ["TE1", "TE2", "TE3", "TE4"]
        assert case.path_mode == "longer"

    def test_max_selfish(self):
        assert get_case("case1").max_selfish == 0
        assert get_case("case3").max_selfish == 30

    def test_unknown_case(self):
        with pytest.raises(KeyError, match="case9"):
            get_case("case9")


class TestEvaluationCase:
    def test_validation(self):
        with pytest.raises(ValueError):
            EvaluationCase("x", "d", (), "shorter")
        with pytest.raises(ValueError):
            EvaluationCase(
                "x", "d", (TournamentEnvironment("A", 10, 0),), "diagonal"
            )


class TestExtensionCases:
    def test_extension_cases_registered(self):
        from repro.experiments.cases import ALL_CASES, EXTENSION_CASES

        assert {"mobile_waypoint", "mobile_gauss"} <= set(EXTENSION_CASES)
        assert {
            "exchange_off",
            "exchange_core",
            "exchange_full",
        } <= set(EXTENSION_CASES)
        assert set(ALL_CASES) == set(CASES) | set(EXTENSION_CASES)
        # the paper's Table 4 set stays pristine
        assert not any(name in CASES for name in EXTENSION_CASES)

    def test_extension_cases_name_valid_presets(self):
        from repro.config.presets import EXCHANGE_PRESETS, MOBILITY_PRESETS
        from repro.experiments.cases import EXTENSION_CASES

        for case in EXTENSION_CASES.values():
            assert case.mobility in MOBILITY_PRESETS
            assert case.exchange in EXCHANGE_PRESETS
        for name in ("mobile_waypoint", "mobile_gauss"):
            assert EXTENSION_CASES[name].mobility != "none"
        for name in ("exchange_core", "exchange_full"):
            assert EXTENSION_CASES[name].exchange != "none"

    def test_get_case_resolves_extensions(self):
        case = get_case("mobile_waypoint")
        assert case.mobility == "waypoint"
        assert case.max_selfish == 0

    def test_exchange_cases_share_environments(self):
        envs = {
            name: get_case(name).environments
            for name in ("exchange_off", "exchange_core", "exchange_full")
        }
        assert len(set(envs.values())) == 1  # apples-to-apples comparison
        assert get_case("exchange_off").exchange == "none"

    def test_paper_cases_have_no_extensions(self):
        for case in CASES.values():
            assert case.mobility == "none"
            assert case.exchange == "none"

    def test_unknown_exchange_preset_rejected(self):
        with pytest.raises(ValueError, match="exchange preset"):
            EvaluationCase(
                "x",
                "d",
                (TournamentEnvironment("A", 10, 0),),
                "shorter",
                exchange="bogus",
            )

    def test_unknown_mobility_preset_rejected(self):
        with pytest.raises(ValueError, match="mobility preset"):
            EvaluationCase(
                "x", "d", (TournamentEnvironment("A", 10, 0),), "shorter",
                mobility="warp",
            )

"""Unit tests for the turbo engine's mechanics (construction, protocol,
speculation bookkeeping, exchange plumbing, oracle coverage).

Distributional correctness lives in ``test_engine_statistical.py``;
cross-engine invariants in ``test_properties_reputation.py``.  This file
covers what's specific to the implementation itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.mobility import MobilityConfig
from repro.core.strategy import STRATEGY_LENGTH, Strategy
from repro.game.stats import TournamentStats
from repro.mobility import build_oracle
from repro.network.topology import GeometricTopology, TopologyPathOracle
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import GameSetup, RandomPathOracle, ScriptedPathOracle
from repro.reputation.exchange import ExchangeConfig
from repro.sim import ENGINES, make_engine
from repro.sim.turbo import TurboEngine


def build_engine(n_pop=16, n_csn=4, seed=7):
    rng = np.random.default_rng(seed)
    engine = make_engine("turbo", n_pop, n_csn)
    engine.set_strategies([Strategy.random(rng) for _ in range(n_pop)])
    return engine


def run(engine, rounds=12, seed=3, participants=None):
    if participants is None:
        participants = list(range(engine.n_population)) + engine.selfish_ids(
            engine.max_selfish
        )
    oracle = RandomPathOracle(np.random.default_rng(seed), SHORTER_PATHS)
    stats = TournamentStats()
    engine.run_tournament(participants, rounds, oracle, stats, None, None)
    return stats, participants


class TestConstruction:
    def test_registered(self):
        assert ENGINES["turbo"] is TurboEngine
        assert TurboEngine.name == "turbo"

    def test_validation(self):
        with pytest.raises(ValueError, match="population must be >= 1"):
            TurboEngine(0, 0)
        with pytest.raises(ValueError, match="max_selfish must be >= 0"):
            TurboEngine(4, -1)

    def test_selfish_ids_bounds(self):
        engine = build_engine(10, 2)
        assert engine.selfish_ids(2) == [10, 11]
        with pytest.raises(ValueError, match="engine allocated 2"):
            engine.selfish_ids(3)

    def test_strategy_roundtrip_and_padding(self):
        engine = build_engine(6, 3)
        rng = np.random.default_rng(0)
        strategies = [Strategy.random(rng) for _ in range(6)]
        engine.set_strategies(strategies)
        matrix = engine.strategy_matrix
        assert matrix.shape == (6, STRATEGY_LENGTH)
        for row, strategy in zip(matrix, strategies):
            assert tuple(row.tolist()) == strategy.bits
        # the CSN tail of the gather table always reads "never forward"
        table = engine._strat_flat.reshape(engine.m, STRATEGY_LENGTH)
        assert not table[6:].any()
        with pytest.raises(ValueError, match="expected 6 strategies"):
            engine.set_strategies(strategies[:3])

    def test_wrong_trust_levels_rejected(self):
        from repro.reputation.trust import TrustTable

        with pytest.raises(ValueError, match="4 trust levels"):
            TurboEngine(4, 0, trust_table=TrustTable(bounds=(0.5,)))


class TestTournamentMechanics:
    def test_rounds_and_exchange_validation(self):
        engine = build_engine()
        oracle = RandomPathOracle(np.random.default_rng(0), SHORTER_PATHS)
        with pytest.raises(ValueError, match="rounds must be >= 1"):
            engine.run_tournament([0, 1, 2], 0, oracle, TournamentStats(), None, None)
        with pytest.raises(ValueError, match="requires an rng"):
            engine.run_tournament(
                [0, 1, 2],
                2,
                oracle,
                TournamentStats(),
                ExchangeConfig(enabled=True),
                None,
            )

    def test_conservation_and_reset(self):
        engine = build_engine()
        stats, participants = run(engine, rounds=9)
        assert (
            stats.nn_originated + stats.csn_originated == 9 * len(participants)
        )
        assert int(engine.n_sent.sum()) == 9 * len(participants)
        assert engine.fitness().shape == (16,)
        assert np.isfinite(engine.fitness()).all()
        engine.reset_generation()
        assert not engine.ps.any() and not engine.send_pay.any()

    def test_subset_seating(self):
        """Tournaments routinely seat a strict subset of the population in
        arbitrary order (the scheduler shuffles)."""
        engine = build_engine(16, 4)
        participants = [14, 3, 17, 7, 0, 9, 16, 5]
        stats, _ = run(engine, rounds=6, participants=participants)
        assert stats.nn_originated + stats.csn_originated == 6 * 8
        # non-participants never gained payoffs or observations
        outsiders = [pid for pid in range(20) if pid not in participants]
        assert not engine.n_sent[outsiders].any()
        assert not engine.ps[outsiders].any()
        assert not engine.ps[:, outsiders].any()

    def test_replay_instrumentation(self):
        engine = build_engine()
        run(engine, rounds=20)
        first = engine._replayed_games
        assert first > 0  # speculation conflicts do happen at this density
        run(engine, rounds=1, seed=99)
        assert engine._replayed_games < first  # counter resets per tournament

    def test_payoff_accounting_matches_event_counts(self):
        engine = build_engine()
        stats, participants = run(engine, rounds=15)
        n_pop = engine.n_population
        accepted = (
            stats.requests_from_nn.accepted_by_nn
            + stats.requests_from_csn.accepted_by_nn
        )
        rejected_nn = (
            stats.requests_from_nn.rejected_by_nn
            + stats.requests_from_csn.rejected_by_nn
        )
        assert int(engine.n_fwd[:n_pop].sum()) == accepted
        assert int(engine.n_disc[:n_pop].sum()) == rejected_nn
        # CSN payoff accumulators are dead state, never touched
        assert not engine.n_fwd[n_pop:].any()
        assert not engine.n_disc[n_pop:].any()
        assert not engine.fwd_pay_acc[n_pop:].any()

    def test_all_selfish_population_delivers_nothing(self):
        """With all-zero strategies nobody forwards: zero cooperation, all
        discard payoffs — exercises the all-fail speculation path."""
        engine = make_engine("turbo", 8, 0)
        engine.set_strategies(
            [Strategy((0,) * STRATEGY_LENGTH) for _ in range(8)]
        )
        stats, _ = run(engine, rounds=5)
        assert stats.nn_delivered == 0
        assert int(engine.n_fwd.sum()) == 0

    def test_all_altruist_population_delivers_everything(self):
        engine = make_engine("turbo", 8, 0)
        engine.set_strategies(
            [Strategy((1,) * STRATEGY_LENGTH) for _ in range(8)]
        )
        stats, _ = run(engine, rounds=5)
        assert stats.nn_delivered == stats.nn_originated
        assert int(engine.n_disc.sum()) == 0
        # with no conflicts possible on decisions? conflicts may still occur;
        # either way the outcome above is exact


class TestOracleCoverage:
    def test_scripted_oracle_runs_through_plan_fallback(self):
        setups = []
        for _ in range(2):  # 2 rounds
            for source in range(5):
                inter = [(source + 1) % 5, (source + 2) % 5]
                setups.append(
                    GameSetup(
                        source=source,
                        destination=(source + 3) % 5,
                        paths=(tuple(inter),),
                    )
                )
        oracle = ScriptedPathOracle(setups)
        engine = make_engine("turbo", 5, 0)
        rng = np.random.default_rng(1)
        engine.set_strategies([Strategy.random(rng) for _ in range(5)])
        stats = TournamentStats()
        engine.run_tournament(list(range(5)), 2, oracle, stats, None, None)
        assert oracle.remaining == 0
        assert stats.nn_originated == 10

    def test_topology_oracle(self):
        rng = np.random.default_rng(2)
        topology = GeometricTopology(range(20), radio_range=0.5, rng=rng)
        oracle = TopologyPathOracle(topology, rng)
        engine = build_engine(16, 4)
        stats = TournamentStats()
        engine.run_tournament(list(range(20)), 8, oracle, stats, None, None)
        assert stats.nn_originated + stats.csn_originated == 8 * 20

    def test_mobile_oracle(self):
        rng = np.random.default_rng(3)
        oracle = build_oracle(
            MobilityConfig(model="waypoint", radio_range=0.5), range(20), rng
        )
        engine = build_engine(16, 4)
        stats = TournamentStats()
        engine.run_tournament(list(range(20)), 6, oracle, stats, None, None)
        assert stats.nn_originated + stats.csn_originated == 6 * 20


class TestExchangePlumbing:
    @pytest.mark.parametrize("shared_rng", [False, True])
    def test_exchange_adds_evidence_and_stays_consistent(self, shared_rng):
        engine = build_engine()
        oracle_rng = np.random.default_rng(5)
        oracle = RandomPathOracle(oracle_rng, SHORTER_PATHS)
        rng = oracle_rng if shared_rng else np.random.default_rng(6)
        participants = list(range(16)) + engine.selfish_ids(4)
        config = ExchangeConfig(enabled=True, interval=3, fanout=2)
        baseline = build_engine()
        run(baseline, rounds=12, seed=55)
        stats = TournamentStats()
        engine.run_tournament(participants, 12, oracle, stats, config, rng)
        assert np.array_equal(engine.known, (engine.ps > 0).sum(axis=1))
        assert np.array_equal(engine.pf_sum, engine.pf.sum(axis=1))
        assert (engine.pf <= engine.ps).all()

    def test_disabled_exchange_is_inert(self):
        a, b = build_engine(seed=7), build_engine(seed=7)
        sa, _ = run(a, rounds=8, seed=13)
        oracle = RandomPathOracle(np.random.default_rng(13), SHORTER_PATHS)
        sb = TournamentStats()
        b.run_tournament(
            list(range(16)) + b.selfish_ids(4),
            8,
            oracle,
            sb,
            ExchangeConfig(enabled=False),
            np.random.default_rng(1),
        )
        assert sa.to_dict() == sb.to_dict()
        assert np.array_equal(a.payoff_matrix(), b.payoff_matrix())


class TestIntrospection:
    def test_payoff_matrix_layout(self):
        engine = build_engine()
        run(engine, rounds=5)
        matrix = engine.payoff_matrix()
        assert matrix.shape == (20, 20, 2)
        assert np.array_equal(matrix[:, :, 0], engine.ps)
        assert np.array_equal(matrix[:, :, 1], engine.pf)

    def test_fitness_zero_without_events(self):
        engine = build_engine()
        assert np.array_equal(engine.fitness(), np.zeros(16))

"""Unit and statistical tests for the Table 2/3 distributions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paths.distributions import (
    DEFAULT_PATH_COUNTS,
    LONGER_PATHS,
    SHORTER_PATHS,
    DiscreteDistribution,
    PathCountDistribution,
)


class TestDiscreteDistribution:
    def test_requires_unit_mass(self):
        with pytest.raises(ValueError, match="sum to 1"):
            DiscreteDistribution({1: 0.5, 2: 0.4})

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DiscreteDistribution({1: -0.5, 2: 1.5})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DiscreteDistribution({})

    def test_pmf_lookup(self):
        d = DiscreteDistribution({1: 0.25, 2: 0.75})
        assert d.pmf(1) == 0.25
        assert d.pmf(3) == 0.0

    def test_mean(self):
        d = DiscreteDistribution({1: 0.5, 3: 0.5})
        assert d.mean() == 2.0

    def test_sample_support(self, rng):
        d = DiscreteDistribution({2: 0.3, 5: 0.7})
        draws = {d.sample(rng) for _ in range(200)}
        assert draws <= {2, 5}
        assert draws == {2, 5}

    def test_sample_many_matches_support(self, rng):
        d = DiscreteDistribution({1: 0.2, 2: 0.8})
        draws = d.sample_many(rng, 500)
        assert set(np.unique(draws)) <= {1, 2}

    def test_degenerate_distribution(self, rng):
        d = DiscreteDistribution({4: 1.0})
        assert all(d.sample(rng) == 4 for _ in range(10))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25)
    def test_sample_always_in_support(self, seed):
        d = DiscreteDistribution({1: 0.1, 2: 0.2, 7: 0.7})
        rng = np.random.default_rng(seed)
        assert d.sample(rng) in (1, 2, 7)


class TestTable2HopDistributions:
    def test_shorter_paths_pmf(self):
        """Table 2, shorter-paths column, per-hop-count reading."""
        d = SHORTER_PATHS.dist
        assert d.pmf(2) == pytest.approx(0.2)
        assert d.pmf(3) == pytest.approx(0.3)
        assert d.pmf(4) == pytest.approx(0.3)
        for h in (5, 6, 7, 8):
            assert d.pmf(h) == pytest.approx(0.05)
        assert d.pmf(9) == 0.0 and d.pmf(10) == 0.0

    def test_longer_paths_pmf(self):
        d = LONGER_PATHS.dist
        assert d.pmf(2) == pytest.approx(0.1)
        for h in (3, 4, 5, 6, 7, 8):
            assert d.pmf(h) == pytest.approx(0.1)
        assert d.pmf(9) == pytest.approx(0.15)
        assert d.pmf(10) == pytest.approx(0.15)

    def test_both_sum_to_one(self):
        assert SHORTER_PATHS.dist.probabilities.sum() == pytest.approx(1.0)
        assert LONGER_PATHS.dist.probabilities.sum() == pytest.approx(1.0)

    def test_longer_mode_has_longer_mean(self):
        assert LONGER_PATHS.dist.mean() > SHORTER_PATHS.dist.mean()

    def test_hop_range(self):
        assert SHORTER_PATHS.min_hops == 2
        assert SHORTER_PATHS.max_hops == 10

    def test_empirical_frequencies(self, rng):
        """Sampled frequencies match Table 2 within Monte-Carlo tolerance."""
        draws = SHORTER_PATHS.sample_many(rng, 40_000)
        freq2 = np.mean(draws == 2)
        freq34 = np.mean((draws == 3) | (draws == 4))
        assert freq2 == pytest.approx(0.2, abs=0.01)
        assert freq34 == pytest.approx(0.6, abs=0.012)
        assert not np.any(draws >= 9)


class TestTable3PathCounts:
    def test_short_hops_row(self):
        d = DEFAULT_PATH_COUNTS.distribution_for(2)
        assert d.pmf(1) == 0.5 and d.pmf(2) == 0.3 and d.pmf(3) == 0.2

    def test_mid_hops_row(self):
        d = DEFAULT_PATH_COUNTS.distribution_for(5)
        assert d.pmf(1) == 0.6 and d.pmf(2) == 0.25 and d.pmf(3) == 0.15

    def test_long_hops_row(self):
        d = DEFAULT_PATH_COUNTS.distribution_for(8)
        assert d.pmf(1) == 0.8 and d.pmf(2) == 0.15 and d.pmf(3) == 0.05

    def test_nine_ten_hop_extension_uses_last_row(self):
        """DESIGN.md §2.3: hops 9-10 reuse the 7-8 row."""
        for hops in (9, 10, 15):
            d = DEFAULT_PATH_COUNTS.distribution_for(hops)
            assert d.pmf(1) == 0.8

    def test_below_range_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_PATH_COUNTS.distribution_for(1)

    def test_max_count(self):
        assert DEFAULT_PATH_COUNTS.max_count() == 3

    def test_non_contiguous_rows_rejected(self):
        with pytest.raises(ValueError, match="contiguous"):
            PathCountDistribution({(2, 3): {1: 1.0}, (5, 6): {1: 1.0}})

    def test_longer_paths_have_fewer_alternatives(self):
        """The paper's qualitative claim about Table 3."""
        m_short = DEFAULT_PATH_COUNTS.distribution_for(2).mean()
        m_mid = DEFAULT_PATH_COUNTS.distribution_for(5).mean()
        m_long = DEFAULT_PATH_COUNTS.distribution_for(8).mean()
        assert m_short > m_mid > m_long

"""Unit tests for the second-hand reputation exchange extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reputation.exchange import ExchangeConfig, exchange_reputation
from repro.reputation.records import ReputationTable


def tables_for(ids):
    return {pid: ReputationTable() for pid in ids}


class TestConfig:
    def test_defaults_disabled(self):
        assert not ExchangeConfig().enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval": 0},
            {"fanout": -1},
            {"weight": 1.5},
            {"weight": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ExchangeConfig(**kwargs)


class TestExchange:
    def test_disabled_is_noop(self, rng):
        tables = tables_for([0, 1])
        tables[0].record(2, True)
        n = exchange_reputation(tables, [0, 1], ExchangeConfig(enabled=False), rng)
        assert n == 0
        assert not tables[1].knows(2)

    def test_positive_only_spreads_good_news(self, rng):
        tables = tables_for([0, 1])
        for _ in range(10):
            tables[0].record(2, True)
        cfg = ExchangeConfig(enabled=True, fanout=1, weight=1.0, positive_only=True)
        exchange_reputation(tables, [0, 1], cfg, rng)
        assert tables[1].knows(2)
        assert tables[1].forwarding_rate(2) == 1.0

    def test_positive_only_never_lowers_rate(self, rng):
        tables = tables_for([0, 1])
        for _ in range(10):
            tables[0].record(2, False)  # sender saw only drops
        tables[1].record(2, True)  # receiver saw a forward
        cfg = ExchangeConfig(enabled=True, fanout=1, weight=1.0, positive_only=True)
        exchange_reputation(tables, [0, 1], cfg, rng)
        # CORE-style: the all-negative evidence is not transmitted
        assert tables[1].forwarding_rate(2) == 1.0

    def test_full_exchange_transmits_negatives(self, rng):
        tables = tables_for([0, 1])
        for _ in range(10):
            tables[0].record(2, False)
        cfg = ExchangeConfig(enabled=True, fanout=1, weight=1.0, positive_only=False)
        exchange_reputation(tables, [0, 1], cfg, rng)
        assert tables[1].knows(2)
        assert tables[1].forwarding_rate(2) == 0.0

    def test_weight_scales_counts(self, rng):
        tables = tables_for([0, 1])
        for _ in range(10):
            tables[0].record(2, True)
        cfg = ExchangeConfig(enabled=True, fanout=1, weight=0.5, positive_only=True)
        exchange_reputation(tables, [0, 1], cfg, rng)
        assert tables[1].get(2).pf == 5

    def test_no_gossip_about_receiver_or_sender(self, rng):
        tables = tables_for([0, 1])
        tables[0].record(1, False)  # sender's opinion about the receiver
        cfg = ExchangeConfig(enabled=True, fanout=1, weight=1.0, positive_only=False)
        exchange_reputation(tables, [0, 1], cfg, rng)
        assert not tables[1].knows(1)  # receiver never told about itself

    def test_no_same_step_amplification(self, rng):
        """Gossip reflects pre-step snapshots, not gossip received this step."""
        tables = tables_for([0, 1, 2])
        for _ in range(4):
            tables[0].record(9, True)
        cfg = ExchangeConfig(enabled=True, fanout=2, weight=1.0, positive_only=True)
        exchange_reputation(tables, [0, 1, 2], cfg, rng)
        # 1 and 2 each got the 4 observations exactly once (from 0), never a
        # relayed copy of each other's fresh knowledge.
        assert tables[1].get(9).pf == 4
        assert tables[2].get(9).pf == 4

    def test_message_count(self, rng):
        tables = tables_for([0, 1, 2, 3])
        cfg = ExchangeConfig(enabled=True, fanout=2)
        n = exchange_reputation(tables, [0, 1, 2, 3], cfg, rng)
        assert n == 8  # 4 senders x fanout 2

    def test_single_participant_noop(self, rng):
        tables = tables_for([0])
        cfg = ExchangeConfig(enabled=True, fanout=2)
        assert exchange_reputation(tables, [0], cfg, rng) == 0

"""Unit tests for the second-hand reputation exchange extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reputation.exchange import (
    ExchangeConfig,
    exchange_reputation,
    exchange_reputation_flat,
)
from repro.reputation.records import ReputationTable


def tables_for(ids):
    return {pid: ReputationTable() for pid in ids}


class TestConfig:
    def test_defaults_disabled(self):
        assert not ExchangeConfig().enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval": 0},
            {"fanout": -1},
            {"weight": 1.5},
            {"weight": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ExchangeConfig(**kwargs)


class TestExchange:
    def test_disabled_is_noop(self, rng):
        tables = tables_for([0, 1])
        tables[0].record(2, True)
        n = exchange_reputation(tables, [0, 1], ExchangeConfig(enabled=False), rng)
        assert n == 0
        assert not tables[1].knows(2)

    def test_positive_only_spreads_good_news(self, rng):
        tables = tables_for([0, 1])
        for _ in range(10):
            tables[0].record(2, True)
        cfg = ExchangeConfig(enabled=True, fanout=1, weight=1.0, positive_only=True)
        exchange_reputation(tables, [0, 1], cfg, rng)
        assert tables[1].knows(2)
        assert tables[1].forwarding_rate(2) == 1.0

    def test_positive_only_never_lowers_rate(self, rng):
        tables = tables_for([0, 1])
        for _ in range(10):
            tables[0].record(2, False)  # sender saw only drops
        tables[1].record(2, True)  # receiver saw a forward
        cfg = ExchangeConfig(enabled=True, fanout=1, weight=1.0, positive_only=True)
        exchange_reputation(tables, [0, 1], cfg, rng)
        # CORE-style: the all-negative evidence is not transmitted
        assert tables[1].forwarding_rate(2) == 1.0

    def test_full_exchange_transmits_negatives(self, rng):
        tables = tables_for([0, 1])
        for _ in range(10):
            tables[0].record(2, False)
        cfg = ExchangeConfig(enabled=True, fanout=1, weight=1.0, positive_only=False)
        exchange_reputation(tables, [0, 1], cfg, rng)
        assert tables[1].knows(2)
        assert tables[1].forwarding_rate(2) == 0.0

    def test_weight_scales_counts(self, rng):
        tables = tables_for([0, 1])
        for _ in range(10):
            tables[0].record(2, True)
        cfg = ExchangeConfig(enabled=True, fanout=1, weight=0.5, positive_only=True)
        exchange_reputation(tables, [0, 1], cfg, rng)
        assert tables[1].get(2).pf == 5

    def test_no_gossip_about_receiver_or_sender(self, rng):
        tables = tables_for([0, 1])
        tables[0].record(1, False)  # sender's opinion about the receiver
        cfg = ExchangeConfig(enabled=True, fanout=1, weight=1.0, positive_only=False)
        exchange_reputation(tables, [0, 1], cfg, rng)
        assert not tables[1].knows(1)  # receiver never told about itself

    def test_no_same_step_amplification(self, rng):
        """Gossip reflects pre-step snapshots, not gossip received this step."""
        tables = tables_for([0, 1, 2])
        for _ in range(4):
            tables[0].record(9, True)
        cfg = ExchangeConfig(enabled=True, fanout=2, weight=1.0, positive_only=True)
        exchange_reputation(tables, [0, 1, 2], cfg, rng)
        # 1 and 2 each got the 4 observations exactly once (from 0), never a
        # relayed copy of each other's fresh knowledge.
        assert tables[1].get(9).pf == 4
        assert tables[2].get(9).pf == 4

    def test_message_count(self, rng):
        tables = tables_for([0, 1, 2, 3])
        cfg = ExchangeConfig(enabled=True, fanout=2)
        n = exchange_reputation(tables, [0, 1, 2, 3], cfg, rng)
        assert n == 8  # 4 senders x fanout 2

    def test_single_participant_noop(self, rng):
        tables = tables_for([0])
        cfg = ExchangeConfig(enabled=True, fanout=2)
        assert exchange_reputation(tables, [0], cfg, rng) == 0


class TestFlatExchangeEquivalence:
    """``exchange_reputation_flat`` mirrors the table implementation exactly:
    same rng consumption, same folded counts, same aggregates."""

    CONFIGS = [
        ExchangeConfig(enabled=True, fanout=2, positive_only=True),
        ExchangeConfig(enabled=True, fanout=2, positive_only=False),
        ExchangeConfig(enabled=True, fanout=3, weight=1.0, positive_only=False),
        ExchangeConfig(enabled=True, fanout=1, weight=0.3, positive_only=True),
    ]

    @staticmethod
    def seeded_state(m=8, seed=4):
        """Random-but-valid reputation counts in both representations."""
        counts_rng = np.random.default_rng(seed)
        ps_mat = counts_rng.integers(0, 6, size=(m, m))
        np.fill_diagonal(ps_mat, 0)
        pf_mat = np.minimum(counts_rng.integers(0, 6, size=(m, m)), ps_mat)
        tables = tables_for(range(m))
        for observer in range(m):
            for subject in range(m):
                if ps_mat[observer, subject]:
                    tables[observer].merge_counts(
                        subject,
                        int(ps_mat[observer, subject]),
                        int(pf_mat[observer, subject]),
                    )
        ps = ps_mat.tolist()
        pf = pf_mat.tolist()
        known = (ps_mat > 0).sum(axis=1).tolist()
        pf_sum = pf_mat.sum(axis=1).tolist()
        return tables, ps, pf, known, pf_sum

    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_flat_matches_tables(self, config, seed):
        m = 8
        tables, ps, pf, known, pf_sum = self.seeded_state(m)
        participants = list(range(m))
        ref_msgs = exchange_reputation(
            tables, participants, config, np.random.default_rng(seed)
        )
        flat_msgs = exchange_reputation_flat(
            ps, pf, known, pf_sum, participants, config, np.random.default_rng(seed)
        )
        assert flat_msgs == ref_msgs
        for observer in range(m):
            snapshot = tables[observer].snapshot()
            for subject in range(m):
                expected_ps, expected_pf = snapshot.get(subject, (0, 0))
                assert ps[observer][subject] == expected_ps
                assert pf[observer][subject] == expected_pf
            assert known[observer] == tables[observer].n_known
            assert pf_sum[observer] == tables[observer].pf_total

    def test_flat_disabled_is_noop(self, rng):
        _, ps, pf, known, pf_sum = self.seeded_state()
        before = [row[:] for row in ps]
        assert (
            exchange_reputation_flat(
                ps, pf, known, pf_sum, list(range(8)), ExchangeConfig(), rng
            )
            == 0
        )
        assert ps == before

    def test_flat_subset_of_participants(self):
        """Gossip among a seating subset leaves outsiders' rows untouched."""
        cfg = ExchangeConfig(enabled=True, fanout=2, positive_only=False)
        tables, ps, pf, known, pf_sum = self.seeded_state()
        participants = [0, 2, 5, 7]
        outsiders = [1, 3, 4, 6]
        before = {pid: ps[pid][:] for pid in outsiders}
        exchange_reputation(tables, participants, cfg, np.random.default_rng(9))
        exchange_reputation_flat(
            ps, pf, known, pf_sum, participants, cfg, np.random.default_rng(9)
        )
        for pid in outsiders:
            assert ps[pid] == before[pid]
        for pid in participants:
            assert ps[pid] == [
                tables[pid].snapshot().get(s, (0, 0))[0] for s in range(8)
            ]

"""Unit tests for the geometric-topology extension."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.strategy import Strategy
from repro.game.stats import TournamentStats
from repro.network.topology import (
    GeometricTopology,
    TopologyPathOracle,
    shortest_intermediate_paths,
)
from repro.sim.reference import ReferenceEngine


def topology(n=25, radio=0.4, seed=0, **kwargs):
    return GeometricTopology(
        list(range(n)), radio, np.random.default_rng(seed), **kwargs
    )


class TestGeometricTopology:
    def test_connected_by_construction(self):
        import networkx as nx

        topo = topology()
        assert nx.is_connected(topo.graph)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            GeometricTopology([0, 1, 2], 0.0, rng)
        with pytest.raises(ValueError):
            GeometricTopology([0, 1], 0.5, rng)

    def test_sparse_placement_fails_loudly(self):
        with pytest.raises(RuntimeError, match="radio_range"):
            GeometricTopology(
                list(range(40)),
                0.02,
                np.random.default_rng(1),
                max_placement_attempts=3,
            )

    def test_edges_respect_radio_range(self):
        topo = topology()
        for a, b in topo.graph.edges:
            (xa, ya), (xb, yb) = topo.positions[a], topo.positions[b]
            assert (xa - xb) ** 2 + (ya - yb) ** 2 <= topo.radio_range**2 + 1e-12

    def test_degree_stats(self):
        mean, lo, hi = topology().degree_stats()
        assert lo >= 1 and hi >= mean >= lo

    def test_candidate_paths_exclude_endpoints(self):
        topo = topology()
        paths = topo.candidate_paths(0, 5, max_paths=3, max_hops=10)
        for p in paths:
            assert 0 not in p and 5 not in p

    def test_direct_neighbours_skipped(self):
        topo = topology(radio=1.414)  # (nearly) complete graph
        # every pair is adjacent; only >= 2-hop simple routes qualify
        paths = topo.candidate_paths(0, 1, max_paths=2, max_hops=10)
        for p in paths:
            assert len(p) >= 1

    def test_max_paths_respected(self):
        topo = topology()
        assert len(topo.candidate_paths(0, 10, max_paths=2, max_hops=10)) <= 2

    def test_disconnected_topology_allowed_when_not_required(self):
        """require_connected=False accepts whatever placement comes out."""
        topo = topology(n=40, radio=0.08, seed=1, require_connected=False)
        assert not nx.is_connected(topo.graph)

    def test_no_route_between_components(self):
        topo = topology(n=40, radio=0.08, seed=1, require_connected=False)
        components = list(nx.connected_components(topo.graph))
        assert len(components) >= 2
        a = next(iter(components[0]))
        b = next(iter(components[1]))
        assert topo.candidate_paths(a, b, max_paths=3, max_hops=10) == []


class TestShortestIntermediatePaths:
    def test_collects_max_paths_despite_skipped_candidates(self):
        """The generator is consumed until enough valid routes are found —
        no fixed slice can truncate the collection early."""
        graph = nx.complete_graph(10)
        # 8 two-hop routes exist between any pair; the 1-hop direct route is
        # skipped; ask for more than the old islice cap would have visited
        paths = shortest_intermediate_paths(graph, 0, 1, max_paths=8, max_hops=2)
        assert len(paths) == 8
        assert all(len(p) == 1 for p in paths)

    def test_max_hops_bounds_route_length(self):
        graph = nx.path_graph(8)  # 0-1-2-...-7
        assert shortest_intermediate_paths(graph, 0, 7, 3, max_hops=6) == []
        assert shortest_intermediate_paths(graph, 0, 7, 3, max_hops=7) == [
            (1, 2, 3, 4, 5, 6)
        ]

    def test_missing_node_yields_no_paths(self):
        graph = nx.path_graph(4)
        assert shortest_intermediate_paths(graph, 0, 99, 3, 10) == []

    def test_nonpositive_max_paths(self):
        graph = nx.complete_graph(4)
        assert shortest_intermediate_paths(graph, 0, 1, 0, 10) == []


class TestTopologyPathOracle:
    def test_draw_produces_valid_setup(self):
        topo = topology()
        oracle = TopologyPathOracle(topo, np.random.default_rng(2))
        setup = oracle.draw(0, list(range(25)))
        assert setup.source == 0
        assert setup.destination != 0
        assert setup.paths

    def test_draw_exhausts_max_draws_on_unroutable_source(self):
        """Two adjacent participants leave no >=2-hop route: every candidate
        path is filtered out and the oracle fails loudly after max_draws."""
        topo = topology()
        oracle = TopologyPathOracle(topo, np.random.default_rng(5), max_draws=8)
        neighbour = next(iter(topo.graph[0]))
        with pytest.raises(RuntimeError, match="after 8 draws"):
            oracle.draw(0, [0, neighbour])

    def test_draw_fails_across_disconnected_components(self):
        topo = topology(n=40, radio=0.08, seed=1, require_connected=False)
        components = sorted(nx.connected_components(topo.graph), key=len)
        source = next(iter(components[0]))  # smallest (often isolated) node
        others = [n for n in topo.node_ids if n not in components[0]]
        oracle = TopologyPathOracle(topo, np.random.default_rng(6), max_draws=16)
        with pytest.raises(RuntimeError, match="no routable destination"):
            oracle.draw(source, [source] + others[:5])

    def test_cache_avoids_recomputation(self):
        topo = topology()
        calls = []
        original = topo.candidate_paths
        topo.candidate_paths = lambda *a, **k: calls.append(a) or original(*a, **k)
        oracle = TopologyPathOracle(topo, np.random.default_rng(7))
        participants = list(range(25))
        for _ in range(50):
            oracle.draw(0, participants)
        # at most one topology computation per (source, destination) pair
        assert len(calls) == len(set(calls))

    def test_cache_disabled_recomputes(self):
        topo = topology()
        calls = []
        original = topo.candidate_paths
        topo.candidate_paths = lambda *a, **k: calls.append(a) or original(*a, **k)
        oracle = TopologyPathOracle(topo, np.random.default_rng(7), cache=False)
        participants = list(range(25))
        for _ in range(50):
            oracle.draw(0, participants)
        assert len(calls) > len(set(calls))

    def test_cached_and_uncached_draws_identical(self):
        setups = []
        for cache in (True, False):
            topo = topology()
            oracle = TopologyPathOracle(topo, np.random.default_rng(8), cache=cache)
            participants = list(range(25))
            setups.append(
                [oracle.draw(s, participants) for s in range(25) for _ in range(4)]
            )
        assert setups[0] == setups[1]

    def test_paths_filtered_to_active_participants(self):
        topo = topology()
        oracle = TopologyPathOracle(topo, np.random.default_rng(3))
        active = list(range(0, 25, 1))
        setup = oracle.draw(0, active)
        for path in setup.paths:
            assert all(node in active for node in path)

    def test_engine_runs_on_topology_oracle(self):
        """The extension plugs into the standard engine unchanged."""
        topo = topology()
        oracle = TopologyPathOracle(topo, np.random.default_rng(4))
        engine = ReferenceEngine(25, 0)
        engine.set_strategies([Strategy.all_forward() for _ in range(25)])
        stats = TournamentStats()
        engine.run_tournament(list(range(25)), 3, oracle, stats, None, None)
        assert stats.nn_originated == 75
        assert stats.cooperation_level == 1.0


class TestTopologyDrawTournament:
    """The batched draw path must be stream-identical to per-game draws."""

    @pytest.mark.parametrize("seed", [0, 4, 9])
    def test_stream_identical_to_sequential_draws(self, seed):
        participants = list(range(25))
        sources = participants * 3  # three rounds
        batched = TopologyPathOracle(topology(), np.random.default_rng(seed))
        sequential = TopologyPathOracle(topology(), np.random.default_rng(seed))
        plan = batched.draw_tournament(sources, participants)
        assert len(plan) == len(sources)
        for game, source in zip(plan, sources):
            setup = sequential.draw(source, participants)
            got_source, got_dest, got_paths = game
            assert got_source == setup.source == source
            assert got_dest == setup.destination
            assert tuple(tuple(p) for p in got_paths) == setup.paths
        # including the generator state: interleaving the two modes across
        # engines can never skew a shared stream
        assert (
            batched.rng.bit_generator.state
            == sequential.rng.bit_generator.state
        )

    def test_rejection_redraws_consume_identically(self):
        """Restricted scopes force redraws; both modes must burn the same
        number of destination draws on them."""
        scope = list(range(0, 25, 2))  # sparse scope: rejections likely
        a = TopologyPathOracle(topology(), np.random.default_rng(3))
        b = TopologyPathOracle(topology(), np.random.default_rng(3))
        plan = a.draw_tournament(scope * 4, scope)
        for game, source in zip(plan, scope * 4):
            setup = b.draw(source, scope)
            assert (game[0], game[1]) == (setup.source, setup.destination)
        assert a.rng.bit_generator.state == b.rng.bit_generator.state

    def test_cache_disabled_bypasses_route_table(self):
        """cache=False keeps benchmarking semantics on the batched path:
        every draw recomputes, nothing is served from the scoped table."""
        topo = topology()
        calls = []
        original = topo.candidate_paths
        topo.candidate_paths = lambda *a, **k: calls.append(a) or original(*a, **k)
        oracle = TopologyPathOracle(topo, np.random.default_rng(7), cache=False)
        participants = list(range(25))
        oracle.draw_tournament(participants * 4, participants)
        assert len(calls) > len(set(calls))  # repeated pairs recompute

    def test_scope_change_refilters_route_table(self):
        oracle = TopologyPathOracle(topology(), np.random.default_rng(11))
        full = list(range(25))
        plan_full = oracle.draw_tournament(full, full)
        narrow = full[:13]
        plan_narrow = oracle.draw_tournament(narrow, narrow)
        active = set(narrow)
        for _, destination, paths in plan_narrow:
            assert destination in active
            for path in paths:
                assert all(node in active for node in path)
        assert len(plan_full) == 25 and len(plan_narrow) == 13

    def test_batch_engine_runs_on_topology_oracle(self):
        from repro.sim import make_engine

        topo = topology()
        oracle = TopologyPathOracle(topo, np.random.default_rng(4))
        engine = make_engine("batch", 25, 0)
        engine.set_strategies([Strategy.all_forward() for _ in range(25)])
        stats = TournamentStats()
        engine.run_tournament(list(range(25)), 3, oracle, stats, None, None)
        assert stats.nn_originated == 75
        assert stats.cooperation_level == 1.0

"""Unit tests for the geometric-topology extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategy import Strategy
from repro.game.stats import TournamentStats
from repro.network.topology import GeometricTopology, TopologyPathOracle
from repro.sim.reference import ReferenceEngine


def topology(n=25, radio=0.4, seed=0, **kwargs):
    return GeometricTopology(
        list(range(n)), radio, np.random.default_rng(seed), **kwargs
    )


class TestGeometricTopology:
    def test_connected_by_construction(self):
        import networkx as nx

        topo = topology()
        assert nx.is_connected(topo.graph)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            GeometricTopology([0, 1, 2], 0.0, rng)
        with pytest.raises(ValueError):
            GeometricTopology([0, 1], 0.5, rng)

    def test_sparse_placement_fails_loudly(self):
        with pytest.raises(RuntimeError, match="radio_range"):
            GeometricTopology(
                list(range(40)),
                0.02,
                np.random.default_rng(1),
                max_placement_attempts=3,
            )

    def test_edges_respect_radio_range(self):
        topo = topology()
        for a, b in topo.graph.edges:
            (xa, ya), (xb, yb) = topo.positions[a], topo.positions[b]
            assert (xa - xb) ** 2 + (ya - yb) ** 2 <= topo.radio_range**2 + 1e-12

    def test_degree_stats(self):
        mean, lo, hi = topology().degree_stats()
        assert lo >= 1 and hi >= mean >= lo

    def test_candidate_paths_exclude_endpoints(self):
        topo = topology()
        paths = topo.candidate_paths(0, 5, max_paths=3, max_hops=10)
        for p in paths:
            assert 0 not in p and 5 not in p

    def test_direct_neighbours_skipped(self):
        topo = topology(radio=1.414)  # (nearly) complete graph
        # every pair is adjacent; only >= 2-hop simple routes qualify
        paths = topo.candidate_paths(0, 1, max_paths=2, max_hops=10)
        for p in paths:
            assert len(p) >= 1

    def test_max_paths_respected(self):
        topo = topology()
        assert len(topo.candidate_paths(0, 10, max_paths=2, max_hops=10)) <= 2


class TestTopologyPathOracle:
    def test_draw_produces_valid_setup(self):
        topo = topology()
        oracle = TopologyPathOracle(topo, np.random.default_rng(2))
        setup = oracle.draw(0, list(range(25)))
        assert setup.source == 0
        assert setup.destination != 0
        assert setup.paths

    def test_paths_filtered_to_active_participants(self):
        topo = topology()
        oracle = TopologyPathOracle(topo, np.random.default_rng(3))
        active = list(range(0, 25, 1))
        setup = oracle.draw(0, active)
        for path in setup.paths:
            assert all(node in active for node in path)

    def test_engine_runs_on_topology_oracle(self):
        """The extension plugs into the standard engine unchanged."""
        topo = topology()
        oracle = TopologyPathOracle(topo, np.random.default_rng(4))
        engine = ReferenceEngine(25, 0)
        engine.set_strategies([Strategy.all_forward() for _ in range(25)])
        stats = TournamentStats()
        engine.run_tournament(list(range(25)), 3, oracle, stats, None, None)
        assert stats.nn_originated == 75
        assert stats.cooperation_level == 1.0

"""Unit tests for ``scripts/check_perf_regression.py`` — the CI perf gate.

The gate is the last line of defence for the perf ledger; until now it was
itself untested.  These tests drive ``main()`` with synthetic baseline/fresh
ledgers covering the tripping, passing, normalization and degenerate-input
behaviours.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = (
    Path(__file__).resolve().parent.parent / "scripts" / "check_perf_regression.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_perf_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def ledger(walls: dict) -> dict:
    return {
        "bench": "engine_perf",
        "scale": {"games_per_tournament": 2000},
        "wall_s": walls,
        "metrics": {},
        "git_sha": "test",
    }


BASE_WALLS = {
    oracle: {"reference": 0.060, "fast": 0.040, "batch": 0.020, "turbo": 0.014}
    for oracle in ("random", "topology", "mobile")
}


def write(tmp_path: Path, name: str, payload: dict) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


def run_gate(gate, tmp_path, fresh_walls, extra_args=()):
    baseline = write(tmp_path, "baseline.json", ledger(BASE_WALLS))
    fresh = write(tmp_path, "fresh.json", ledger(fresh_walls))
    return gate.main(
        ["--baseline", str(baseline), "--fresh", str(fresh), *extra_args]
    )


class TestWithinGate:
    def test_identical_ledgers_pass(self, gate, tmp_path):
        assert run_gate(gate, tmp_path, BASE_WALLS) == 0

    def test_uniformly_slower_runner_passes(self, gate, tmp_path):
        """A 3x slower machine trips neither gate: the reference canary
        normalizes it away and 3x < the 6x absolute failsafe."""
        slower = {
            oracle: {eng: wall * 3.0 for eng, wall in walls.items()}
            for oracle, walls in BASE_WALLS.items()
        }
        assert run_gate(gate, tmp_path, slower) == 0

    def test_faster_run_passes(self, gate, tmp_path):
        faster = {
            oracle: {eng: wall * 0.5 for eng, wall in walls.items()}
            for oracle, walls in BASE_WALLS.items()
        }
        assert run_gate(gate, tmp_path, faster) == 0


class TestRegressionTrips:
    def test_single_engine_regression_trips_normalized(self, gate, tmp_path):
        """One engine 4x slower while the canary is flat -> normalized gate
        fires even though 4x < the absolute 6x failsafe."""
        walls = json.loads(json.dumps(BASE_WALLS))
        walls["random"]["turbo"] = BASE_WALLS["random"]["turbo"] * 4.0
        assert run_gate(gate, tmp_path, walls) == 1

    def test_shared_component_regression_trips_absolute(self, gate, tmp_path):
        """Everything (canary included) 7x slower -> the normalized gate is
        blind but the absolute failsafe fires."""
        walls = {
            oracle: {eng: wall * 7.0 for eng, wall in w.items()}
            for oracle, w in BASE_WALLS.items()
        }
        assert run_gate(gate, tmp_path, walls) == 1

    def test_custom_factor_tightens_gate(self, gate, tmp_path):
        walls = json.loads(json.dumps(BASE_WALLS))
        walls["mobile"]["batch"] = BASE_WALLS["mobile"]["batch"] * 1.5
        assert run_gate(gate, tmp_path, walls, ("--factor", "1.2")) == 1
        assert run_gate(gate, tmp_path, walls, ("--factor", "2.0")) == 0


class TestDegenerateInputs:
    def test_no_comparable_rows_errors(self, gate, tmp_path):
        """Disjoint engine sets (e.g. a renamed engine) must hard-error, not
        silently pass."""
        fresh = {
            oracle: {"renamed": 0.02} for oracle in ("random", "topology", "mobile")
        }
        with pytest.raises(SystemExit, match="no comparable"):
            run_gate(gate, tmp_path, fresh)

    def test_missing_engine_in_fresh_is_skipped(self, gate, tmp_path):
        """An engine present only in the baseline is skipped, not crashed on
        (the row disappears from the comparison)."""
        walls = {
            oracle: {k: v for k, v in w.items() if k != "turbo"}
            for oracle, w in BASE_WALLS.items()
        }
        assert run_gate(gate, tmp_path, walls) == 0

    def test_missing_file_errors(self, gate, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            gate.main(
                [
                    "--baseline",
                    str(tmp_path / "nope.json"),
                    "--fresh",
                    str(tmp_path / "nope.json"),
                ]
            )

    def test_invalid_json_errors(self, gate, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            gate.main(["--baseline", str(bad), "--fresh", str(bad)])

    def test_non_positive_factor_errors(self, gate, tmp_path):
        baseline = write(tmp_path, "b.json", ledger(BASE_WALLS))
        with pytest.raises(SystemExit, match="factors must be > 0"):
            gate.main(
                [
                    "--baseline",
                    str(baseline),
                    "--fresh",
                    str(baseline),
                    "--factor",
                    "0",
                ]
            )

    def test_zero_wall_baseline_skipped(self, gate, tmp_path):
        """A corrupt zero wall time in the baseline must not divide by zero;
        the row is skipped and the remaining rows still gate."""
        base = json.loads(json.dumps(BASE_WALLS))
        base["random"]["batch"] = 0.0
        baseline = write(tmp_path, "baseline.json", ledger(base))
        fresh = write(tmp_path, "fresh.json", ledger(BASE_WALLS))
        assert gate.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0

    def test_oracle_row_missing_from_both_ledgers_is_skipped(self, gate, tmp_path):
        """A gated row absent from *both* ledgers predates them (e.g. an old
        baseline without the highspeed rows) and must not error."""
        walls = {
            "random": dict(BASE_WALLS["random"]),
            "topology": dict(BASE_WALLS["topology"]),
        }
        baseline = write(tmp_path, "baseline.json", ledger(walls))
        fresh = write(tmp_path, "fresh.json", ledger(walls))
        assert gate.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0

    def test_stacked_rows_are_gated(self, gate):
        """The cross-replication stacked rows must stay in the gate list —
        dropping one silently un-gates the kernel-backend throughput
        trajectory."""
        for row in ("random_stacked", "topology_stacked", "mobile_stacked"):
            assert row in gate.GATED_ORACLES

    def test_stacked_row_gates_absolute_only(self, gate, tmp_path):
        """Stacked rows carry a single ``stacked`` engine and no reference
        canary: a 4x slowdown passes (absolute 6x failsafe only), a 7x one
        trips."""
        base = json.loads(json.dumps(BASE_WALLS))
        base["random_stacked"] = {"stacked": 0.001}
        for factor, expected in ((4.0, 0), (7.0, 1)):
            walls = json.loads(json.dumps(base))
            walls["random_stacked"]["stacked"] = 0.001 * factor
            baseline = write(tmp_path, "baseline.json", ledger(base))
            fresh = write(tmp_path, "fresh.json", ledger(walls))
            assert (
                gate.main(["--baseline", str(baseline), "--fresh", str(fresh)])
                == expected
            ), f"{factor}x stacked slowdown"

    def test_stacked_row_missing_from_one_ledger_errors(
        self, gate, tmp_path, capsys
    ):
        base = json.loads(json.dumps(BASE_WALLS))
        base["mobile_stacked"] = {"stacked": 0.002}
        baseline = write(tmp_path, "baseline.json", ledger(base))
        fresh = write(tmp_path, "fresh.json", ledger(BASE_WALLS))
        assert gate.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 3
        err = capsys.readouterr().err
        assert "'mobile_stacked'" in err and "fresh" in err

    def test_canary_absent_disables_normalized_gate_only(self, gate, tmp_path):
        """Without a reference row the normalized gate cannot run; the
        absolute failsafe still does."""
        base = {
            oracle: {k: v for k, v in w.items() if k != "reference"}
            for oracle, w in BASE_WALLS.items()
        }
        walls = {
            oracle: {eng: wall * 4.0 for eng, wall in w.items()}
            for oracle, w in base.items()
        }
        baseline = write(tmp_path, "baseline.json", ledger(base))
        fresh = write(tmp_path, "fresh.json", ledger(walls))
        # 4x would trip normalized (2.5) but not absolute (6.0)
        assert gate.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0


class TestNamedRowErrors:
    """Missing/malformed named ledger rows exit with the distinct code 3
    (``EXIT_ROW_ERROR``) and a message naming the offending row, instead of
    a raw KeyError/AttributeError traceback."""

    def test_exit_code_is_distinct(self, gate):
        assert gate.EXIT_ROW_ERROR == 3
        assert gate.EXIT_ROW_ERROR not in (0, 1)

    def test_oracle_row_missing_from_fresh_errors(self, gate, tmp_path, capsys):
        """A gated row present in the baseline but dropped from the fresh
        ledger is a broken bench, not a clean comparison."""
        walls = {
            "random": dict(BASE_WALLS["random"]),
            "topology": dict(BASE_WALLS["topology"]),
        }
        assert run_gate(gate, tmp_path, walls) == 3
        err = capsys.readouterr().err
        assert "'mobile'" in err and "fresh" in err

    def test_oracle_row_missing_from_baseline_errors(self, gate, tmp_path, capsys):
        base = {
            "random": dict(BASE_WALLS["random"]),
            "topology": dict(BASE_WALLS["topology"]),
        }
        baseline = write(tmp_path, "baseline.json", ledger(base))
        fresh = write(tmp_path, "fresh.json", ledger(BASE_WALLS))
        assert gate.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 3
        err = capsys.readouterr().err
        assert "'mobile'" in err and "baseline" in err

    def test_row_not_a_mapping_errors(self, gate, tmp_path, capsys):
        walls = json.loads(json.dumps(BASE_WALLS))
        walls["topology"] = 0.123
        assert run_gate(gate, tmp_path, walls) == 3
        assert "'topology'" in capsys.readouterr().err

    def test_non_numeric_wall_errors(self, gate, tmp_path, capsys):
        walls = json.loads(json.dumps(BASE_WALLS))
        walls["random"]["batch"] = "fast!"
        assert run_gate(gate, tmp_path, walls) == 3
        err = capsys.readouterr().err
        assert "'batch'" in err and "'random'" in err

    def test_non_finite_wall_errors(self, gate, tmp_path):
        # json.dumps/loads round-trip NaN, so the malformed ledger survives
        # the file hop exactly as a buggy bench would write it
        walls = json.loads(json.dumps(BASE_WALLS))
        walls["mobile"]["fast"] = float("nan")
        assert run_gate(gate, tmp_path, walls) == 3

    def test_wall_table_not_a_mapping_errors(self, gate, tmp_path, capsys):
        baseline = write(tmp_path, "baseline.json", ledger(BASE_WALLS))
        payload = ledger(BASE_WALLS)
        payload["wall_s"] = ["not", "a", "mapping"]
        fresh = write(tmp_path, "fresh.json", payload)
        assert gate.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 3
        assert "wall_s" in capsys.readouterr().err

"""Unit tests for paper-style report rendering."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import (
    PAPER_FIG4_FINALS,
    PAPER_TABLE5,
    PAPER_TABLE6,
    render_fig4,
    render_table5,
    render_table6,
    render_table7,
    render_table8_9,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment


@pytest.fixture(scope="module")
def case3_result():
    return run_experiment(
        ExperimentConfig.for_case("case3", scale="smoke"), processes=1
    )


@pytest.fixture(scope="module")
def case4_result():
    return run_experiment(
        ExperimentConfig.for_case("case4", scale="smoke"), processes=1
    )


class TestPaperConstants:
    def test_fig4_targets_match_table5_consistent_reading(self):
        """DESIGN.md §2.5: case3 > case4 under the corrected reading."""
        assert PAPER_FIG4_FINALS["case3"] > PAPER_FIG4_FINALS["case4"]
        assert PAPER_FIG4_FINALS["case1"] == 0.97
        assert PAPER_FIG4_FINALS["case2"] == 0.19

    def test_table5_envs(self):
        assert set(PAPER_TABLE5) == {"TE1", "TE2", "TE3", "TE4"}

    def test_table6_rows(self):
        assert ("nn", "accepted") in PAPER_TABLE6
        assert ("csn", "rejected_by_csn") in PAPER_TABLE6


class TestRenderers:
    def test_fig4(self, case3_result, case4_result):
        out = render_fig4({"case3": case3_result, "case4": case4_result})
        assert "Fig. 4" in out
        assert "case3" in out and "case4" in out
        assert "paper" in out

    def test_table5(self, case3_result, case4_result):
        out = render_table5(case3_result, case4_result)
        assert "Table 5" in out
        for env in ("TE1", "TE2", "TE3", "TE4"):
            assert env in out

    def test_table6(self, case3_result, case4_result):
        out = render_table6(case3_result, case4_result)
        assert "Table 6" in out
        assert "from NN" in out and "from CSN" in out
        assert "Req. rejected by CSN" in out

    def test_table7(self, case3_result, case4_result):
        out = render_table7(case3_result, case4_result)
        assert "Table 7" in out
        assert "shorter paths" in out and "longer paths" in out

    def test_table8_9(self, case3_result):
        out = render_table8_9(case3_result, "case 3 (short paths)")
        assert "Trust 0" in out and "Trust 3" in out
        assert "case 3" in out

    def test_table8_min_fraction_zero_shows_everything(self, case3_result):
        full = render_table8_9(case3_result, "x", min_fraction=0.0)
        filtered = render_table8_9(case3_result, "x", min_fraction=0.2)
        assert len(full) >= len(filtered)

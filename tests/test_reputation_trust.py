"""Unit and property tests for the trust lookup table (§3.1, Fig. 1b)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.reputation.trust import TrustTable

rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestDefaults:
    def test_four_levels(self):
        t = TrustTable()
        assert t.n_levels == 4
        assert t.max_level == 3

    def test_bounds(self):
        assert TrustTable().bounds == (0.3, 0.6, 0.9)


class TestValidation:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="increasing"):
            TrustTable(bounds=(0.6, 0.3))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            TrustTable(bounds=(0.0, 0.5))
        with pytest.raises(ValueError):
            TrustTable(bounds=(0.5, 1.0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TrustTable(bounds=())

    def test_rate_out_of_range(self):
        with pytest.raises(ValueError):
            TrustTable().level(1.5)
        with pytest.raises(ValueError):
            TrustTable().level(-0.1)


class TestCustomTables:
    def test_two_level_table(self):
        t = TrustTable(bounds=(0.5,))
        assert t.n_levels == 2
        assert t.level(0.5) == 0
        assert t.level(0.51) == 1


class TestProperties:
    @given(rates)
    def test_level_in_range(self, rate):
        level = TrustTable().level(rate)
        assert 0 <= level <= 3

    @given(rates, rates)
    def test_monotone_in_rate(self, a, b):
        t = TrustTable()
        if a <= b:
            assert t.level(a) <= t.level(b)

    @given(rates)
    def test_bins_match_figure(self, rate):
        """Cross-check against a direct transcription of Fig. 1b."""
        if rate > 0.9:
            expected = 3
        elif rate > 0.6:
            expected = 2
        elif rate > 0.3:
            expected = 1
        else:
            expected = 0
        assert TrustTable().level(rate) == expected

"""HTTP-layer tests for the service: stdlib backend always, fastapi when
installed.

Both backends are skins over the same
:class:`~repro.service.endpoints.Service`, so the round trips here are
deliberately parallel: whichever backend ``repro serve`` picks, the wire
behavior is identical.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.service.app import build_httpd, build_service, fastapi_available

REPO_ROOT = Path(__file__).resolve().parent.parent
SCENARIOS_DIR = REPO_ROOT / "scenarios"


@pytest.fixture()
def http_service(tmp_path):
    """A stdlib-served service on an ephemeral port; yields the base URL."""
    service = build_service(tmp_path / "store", scenarios_dir=SCENARIOS_DIR)
    httpd = build_httpd(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{httpd.server_address[1]}"
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.runner.stop()


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(url: str, payload) -> tuple[int, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestStdlibBackend:
    def test_full_round_trip_with_dedupe(self, http_service):
        code, health = _get(f"{http_service}/healthz")
        assert code == 200 and health["status"] == "ok"

        code, listing = _get(f"{http_service}/scenarios")
        assert code == 200
        assert any(s["library"] == "fig4_smoke" for s in listing["scenarios"])

        code, record = _post(f"{http_service}/jobs", {"library": "fig4_smoke"})
        assert code == 201
        job_id = record["job_id"]

        # duplicate submission dedupes: 200, same content address, one job
        code, again = _post(f"{http_service}/jobs", {"library": "fig4_smoke"})
        assert code == 200 and again["job_id"] == job_id
        code, jobs = _get(f"{http_service}/jobs")
        assert code == 200 and len(jobs["jobs"]) == 1

        # stream until terminal (the worker thread runs the job meanwhile)
        with urllib.request.urlopen(
            f"{http_service}/jobs/{job_id}/stream", timeout=120
        ) as response:
            snapshots = [json.loads(line) for line in response]
        assert snapshots[-1]["state"] == "done"

        # the status payload serves the schema-validated run manifest
        from repro.utils.validation import validate_run_manifest

        code, status = _get(f"{http_service}/jobs/{job_id}")
        assert code == 200 and status["state"] == "done"
        assert validate_run_manifest(status["manifest"])

        code, result = _get(f"{http_service}/jobs/{job_id}/result")
        assert code == 200 and result["replications"]

    def test_error_paths(self, http_service):
        assert _get(f"{http_service}/jobs/{'f' * 64}")[0] == 404
        assert _get(f"{http_service}/nope")[0] == 404
        assert _post(f"{http_service}/jobs", {"library": "nope"})[0] == 400
        code, payload = _post(f"{http_service}/jobs", {"bad": "scenario"})
        assert code == 400 and "error" in payload

    def test_post_rejects_invalid_json(self, http_service):
        request = urllib.request.Request(
            f"{http_service}/jobs", data=b"{broken", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=30)
        assert exc.value.code == 400


@pytest.mark.skipif(not fastapi_available(), reason="service extra not installed")
class TestFastAPIBackend:
    @pytest.fixture()
    def client(self, tmp_path):
        from fastapi.testclient import TestClient

        from repro.service.app import create_app

        service = build_service(tmp_path / "store", scenarios_dir=SCENARIOS_DIR)
        try:
            yield TestClient(create_app(service))
        finally:
            service.runner.stop()

    def test_full_round_trip_with_dedupe(self, client):
        assert client.get("/healthz").status_code == 200
        assert any(
            s["library"] == "fig4_smoke"
            for s in client.get("/scenarios").json()["scenarios"]
        )
        first = client.post("/jobs", json={"library": "fig4_smoke"})
        assert first.status_code == 201
        job_id = first.json()["job_id"]
        duplicate = client.post("/jobs", json={"library": "fig4_smoke"})
        assert duplicate.status_code == 200
        assert duplicate.json()["job_id"] == job_id

        with client.stream("GET", f"/jobs/{job_id}/stream") as stream:
            snapshots = [json.loads(line) for line in stream.iter_lines()]
        assert snapshots[-1]["state"] == "done"

        from repro.utils.validation import validate_run_manifest

        status = client.get(f"/jobs/{job_id}")
        assert status.status_code == 200
        assert validate_run_manifest(status.json()["manifest"])
        result = client.get(f"/jobs/{job_id}/result")
        assert result.status_code == 200 and result.json()["replications"]

    def test_openapi_documents_the_surface(self, client):
        spec = client.get("/openapi.json").json()
        for route in ("/jobs", "/jobs/{job_id}", "/jobs/{job_id}/result"):
            assert route in spec["paths"]

    def test_error_paths(self, client):
        assert client.get(f"/jobs/{'f' * 64}").status_code == 404
        assert client.post("/jobs", json={"library": "nope"}).status_code == 400

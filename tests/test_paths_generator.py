"""Unit and property tests for random path-set generation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paths.distributions import LONGER_PATHS, SHORTER_PATHS
from repro.paths.generator import PathSetGenerator, sample_distinct


class TestSampleDistinct:
    def test_draws_k_distinct(self, rng):
        pool = list(range(20))
        out = sample_distinct(pool, 5, rng)
        assert len(out) == 5
        assert len(set(out)) == 5
        assert set(out) <= set(range(20))

    def test_pool_preserved_as_multiset(self, rng):
        pool = list(range(10))
        sample_distinct(pool, 4, rng)
        assert sorted(pool) == list(range(10))

    def test_k_equals_pool(self, rng):
        pool = [3, 1, 2]
        assert set(sample_distinct(pool, 3, rng)) == {1, 2, 3}

    def test_k_zero(self, rng):
        assert sample_distinct([1, 2], 0, rng) == ()

    def test_k_too_large(self, rng):
        with pytest.raises(ValueError):
            sample_distinct([1, 2], 3, rng)

    def test_uniformity(self):
        """Every element appears ~k/n of the time in the sample."""
        rng = np.random.default_rng(0)
        counts = np.zeros(10)
        pool = list(range(10))
        trials = 6000
        for _ in range(trials):
            for v in sample_distinct(pool, 3, rng):
                counts[v] += 1
        freq = counts / trials
        assert np.allclose(freq, 0.3, atol=0.03)

    @given(st.integers(0, 2**32 - 1), st.integers(1, 9))
    @settings(max_examples=30)
    def test_distinctness_property(self, seed, k):
        rng = np.random.default_rng(seed)
        out = sample_distinct(list(range(12)), k, rng)
        assert len(set(out)) == k


class TestPathSetGenerator:
    def test_paths_have_hops_minus_one_intermediates(self, rng):
        gen = PathSetGenerator(SHORTER_PATHS)
        pool = list(range(48))
        for _ in range(50):
            paths = gen.generate(rng, pool)
            assert 1 <= len(paths) <= 3
            length = len(paths[0])
            assert 1 <= length <= 9  # hops 2..10 -> intermediates 1..9
            for p in paths:
                assert len(p) == length  # all alternates share the hop draw
                assert len(set(p)) == len(p)
                assert set(p) <= set(pool)

    def test_hop_count_clamped_to_pool(self, rng):
        gen = PathSetGenerator(LONGER_PATHS)
        pool = list(range(4))  # can never host 9 intermediates
        for _ in range(30):
            for p in gen.generate(rng, pool):
                assert len(p) <= 4

    def test_tiny_pool_rejected(self, rng):
        gen = PathSetGenerator(SHORTER_PATHS)
        with pytest.raises(ValueError):
            gen.generate(rng, [])

    def test_shorter_mode_mean_shorter(self, rng):
        pool = list(range(48))
        short_gen = PathSetGenerator(SHORTER_PATHS)
        long_gen = PathSetGenerator(LONGER_PATHS)
        short_lengths = [len(short_gen.generate(rng, pool)[0]) for _ in range(800)]
        long_lengths = [len(long_gen.generate(rng, pool)[0]) for _ in range(800)]
        assert np.mean(short_lengths) < np.mean(long_lengths)

    def test_deterministic_under_seed(self):
        gen = PathSetGenerator(SHORTER_PATHS)
        pool = list(range(48))
        a = PathSetGenerator(SHORTER_PATHS).generate(
            np.random.default_rng(5), list(pool)
        )
        b = gen.generate(np.random.default_rng(5), list(pool))
        assert a == b

"""Tests for the service core: store, job runner, endpoints.

The load-bearing guarantees:

* identical submissions dedupe into one content-addressed run (the job id
  *is* the telemetry-excluded ``config_hash``);
* a runner killed mid-job recovers on restart and finishes bit-identical
  to an uninterrupted run (checkpoints + resume, the PR-7 contract);
* job status is the schema-validated telemetry run manifest — no second
  reporting path.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.scenarios import build_scenario_payload, load_scenario
from repro.service import JobRunner, Service
from repro.service.store import ResultStore
from repro.utils.validation import validate_job_record, validate_run_manifest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = Path(repro.__file__).resolve().parents[1]
CRASH_ENV = "REPRO_CHECKPOINT_CRASH_AFTER"


def smoke_payload(**overrides) -> dict:
    merged = {"seed": 2007, **overrides}
    return build_scenario_payload("case1", "smoke", overrides=merged)


class TestResultStore:
    def test_records_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        record = store.save_record(
            ResultStore.new_record("a" * 64, "t", smoke_payload())
        )
        assert store.load_record("a" * 64) == record
        assert validate_job_record(record)

    def test_corrupt_record_reads_as_absent(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save_record(ResultStore.new_record("a" * 64, "t", smoke_payload()))
        store.record_path("a" * 64).write_text("{broken")
        assert store.load_record("a" * 64) is None

    def test_unknown_job_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load_record("b" * 64) is None
        assert store.list_records() == []

    def test_result_payload_is_canonical(self, tmp_path):
        store = ResultStore(tmp_path)
        payload = {
            "config": {"case": "case1"},
            "telemetry": {"wall_s": 1.0},
            "replications": [
                {"history": [1, 2], "checkpoint": {"x": 1}, "telemetry": {}}
            ],
        }
        store.save_result("c" * 64, payload)
        loaded = store.load_result("c" * 64)
        assert "telemetry" not in loaded
        assert loaded["replications"] == [{"history": [1, 2]}]


class TestDoneResultReconciliation:
    """A ``done`` record whose result.json is missing or corrupt must read
    as ``failed`` (persisted, distinct error) so resubmission requeues it —
    previously it served ``result: null`` forever."""

    def _finished_job(self, tmp_path):
        runner = JobRunner(tmp_path)
        record, _ = runner.submit(smoke_payload())
        runner.run_pending()
        job_id = record["job_id"]
        assert runner.store.load_record(job_id)["state"] == "done"
        return runner, job_id

    def test_missing_result_demotes_to_failed(self, tmp_path):
        runner, job_id = self._finished_job(tmp_path)
        runner.store.result_path(job_id).unlink()
        record = runner.store.load_record(job_id)
        assert record["state"] == "failed"
        assert record["error"] == "result file missing or corrupt for a done job"
        # the demotion is persisted: a fresh store reads the same state
        fresh = ResultStore(tmp_path)
        assert fresh.load_record(job_id)["state"] == "failed"

    def test_truncated_result_demotes_to_failed(self, tmp_path):
        runner, job_id = self._finished_job(tmp_path)
        path = runner.store.result_path(job_id)
        path.write_text(path.read_text()[: 40])  # torn write
        record = runner.store.load_record(job_id)
        assert record["state"] == "failed"
        assert "missing or corrupt" in record["error"]

    def test_healthy_done_job_is_untouched(self, tmp_path):
        runner, job_id = self._finished_job(tmp_path)
        record = runner.store.load_record(job_id)
        assert record["state"] == "done"
        assert record["error"] is None

    def test_resubmission_requeues_and_recovers(self, tmp_path):
        runner, job_id = self._finished_job(tmp_path)
        runner.store.result_path(job_id).unlink()
        assert runner.store.load_record(job_id)["state"] == "failed"
        requeued, created = runner.submit(smoke_payload())
        assert created and requeued["state"] == "queued"
        assert runner.run_pending() == 1
        healed = runner.store.load_record(job_id)
        assert healed["state"] == "done"
        assert runner.store.load_result(job_id)["replications"]

    def test_list_records_surfaces_the_demotion(self, tmp_path):
        runner, job_id = self._finished_job(tmp_path)
        runner.store.result_path(job_id).unlink()
        (listed,) = runner.store.list_records()
        assert listed["job_id"] == job_id
        assert listed["state"] == "failed"


class TestRecordCache:
    """``load_record``/``list_records`` serve from the (mtime_ns, size)
    stat-keyed cache — re-parsing only when the file actually changed."""

    def test_cached_record_is_served_without_reparse(self, tmp_path, monkeypatch):
        import repro.service.store as store_mod

        store = ResultStore(tmp_path)
        record = store.save_record(
            ResultStore.new_record("a" * 64, "t", smoke_payload())
        )

        def boom(*args, **kwargs):
            raise AssertionError("cache miss: record was re-parsed")

        monkeypatch.setattr(store_mod.json, "loads", boom)
        assert store.load_record("a" * 64) == record
        assert store.list_records() == [record]

    def test_cache_returns_copies_not_aliases(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save_record(ResultStore.new_record("a" * 64, "t", smoke_payload()))
        first = store.load_record("a" * 64)
        first["state"] = "mangled-by-caller"
        assert store.load_record("a" * 64)["state"] == "queued"

    def test_out_of_band_write_is_picked_up(self, tmp_path):
        store = ResultStore(tmp_path)
        record = store.save_record(
            ResultStore.new_record("a" * 64, "t", smoke_payload())
        )
        assert store.load_record("a" * 64)["state"] == "queued"
        # another process replaces the record (atomic replace moves
        # mtime_ns/size); this store must not serve its stale cache
        other = ResultStore(tmp_path)
        other.save_record(dict(record, state="running", attempts=1))
        assert store.load_record("a" * 64)["state"] == "running"

    def test_corruption_after_caching_reads_as_absent(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save_record(ResultStore.new_record("a" * 64, "t", smoke_payload()))
        assert store.load_record("a" * 64) is not None
        store.record_path("a" * 64).write_text("{broken")
        assert store.load_record("a" * 64) is None

    def test_list_records_stable_under_concurrent_submits(self, tmp_path):
        """GET /jobs-equivalent listing while a worker drains the queue:
        every snapshot is a valid, consistent record set."""
        import time

        runner = JobRunner(tmp_path)
        reader = ResultStore(tmp_path)  # a second server process's view
        runner.start()
        seen_states = set()
        try:
            records = [
                runner.submit(smoke_payload(seed=s))[0] for s in range(3)
            ]
            job_ids = {r["job_id"] for r in records}
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                listing = reader.list_records()
                assert {r["job_id"] for r in listing} <= job_ids
                for r in listing:
                    assert validate_job_record(r)
                    seen_states.add(r["state"])
                states = {
                    runner.store.load_record(job_id)["state"]
                    for job_id in job_ids
                }
                if states == {"done"}:
                    break
                time.sleep(0.01)
        finally:
            runner.stop()
        assert {
            runner.store.load_record(job_id)["state"] for job_id in job_ids
        } == {"done"}
        assert "done" in seen_states


class TestJobRunnerLifecycle:
    def test_duplicate_submission_dedupes_to_one_run(self, tmp_path):
        runner = JobRunner(tmp_path)
        rec1, created1 = runner.submit(smoke_payload())
        rec2, created2 = runner.submit(smoke_payload())
        assert created1 and not created2
        assert rec1["job_id"] == rec2["job_id"]
        assert runner.counters["deduped"] == 1
        assert runner.run_pending() == 1  # one queued job, not two
        done = runner.store.load_record(rec1["job_id"])
        assert done["state"] == "done"
        assert done["attempts"] == 1
        # resubmitting a finished job is also a dedupe hit, no re-run
        rec3, created3 = runner.submit(smoke_payload())
        assert not created3 and rec3["state"] == "done"
        assert runner.run_pending() == 0

    def test_job_id_is_the_config_hash(self, tmp_path):
        from repro.scenarios import resolve_scenario

        runner = JobRunner(tmp_path)
        record, _ = runner.submit(smoke_payload())
        assert record["job_id"] == resolve_scenario(smoke_payload()).config_hash()

    def test_done_job_serves_result_and_valid_manifest(self, tmp_path):
        runner = JobRunner(tmp_path)
        record, _ = runner.submit(smoke_payload())
        runner.run_pending()
        record = runner.store.load_record(record["job_id"])
        result = runner.store.load_result(record["job_id"])
        assert result["replications"], "result payload missing replications"
        manifest = runner.store.load_manifest(record)
        assert validate_run_manifest(manifest)
        assert manifest["config_hash"] == record["job_id"]
        assert manifest["run"]["checkpoint_dir"] == str(
            runner.store.checkpoint_dir
        )

    def test_distinct_scenarios_get_distinct_jobs(self, tmp_path):
        runner = JobRunner(tmp_path)
        rec1, _ = runner.submit(smoke_payload(seed=1))
        rec2, _ = runner.submit(smoke_payload(seed=2))
        assert rec1["job_id"] != rec2["job_id"]
        assert runner.run_pending() == 2

    def test_invalid_scenario_is_rejected(self, tmp_path):
        runner = JobRunner(tmp_path)
        with pytest.raises(ValueError):
            runner.submit({"case": "case1"})
        assert runner.store.list_records() == []

    def test_failed_job_records_error_and_requeues(self, tmp_path, monkeypatch):
        import repro.experiments.runner as runner_mod

        runner = JobRunner(tmp_path)
        record, _ = runner.submit(smoke_payload())

        def boom(*args, **kwargs):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(runner_mod, "run_experiment", boom)
        runner.run_pending()
        failed = runner.store.load_record(record["job_id"])
        assert failed["state"] == "failed"
        assert "injected failure" in failed["error"]
        assert runner.counters["failed"] == 1
        # a failed job is the one state a resubmission requeues
        requeued, created = runner.submit(smoke_payload())
        assert created and requeued["state"] == "queued"
        assert requeued["error"] is None
        monkeypatch.undo()
        runner.run_pending()
        done = runner.store.load_record(record["job_id"])
        assert done["state"] == "done"
        assert done["attempts"] == 2

    def test_recover_requeues_orphaned_jobs(self, tmp_path):
        runner = JobRunner(tmp_path)
        record, _ = runner.submit(smoke_payload())
        # simulate a runner that died mid-job: record left "running"
        runner.store.save_record(dict(record, state="running", attempts=1))
        runner._queue.clear()
        fresh = JobRunner(tmp_path)
        assert fresh.recover() == 1
        assert fresh.run_pending() == 1
        assert fresh.store.load_record(record["job_id"])["state"] == "done"

    def test_worker_thread_drains_the_queue(self, tmp_path):
        import time

        runner = JobRunner(tmp_path)
        runner.start()
        try:
            record, _ = runner.submit(smoke_payload())
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                state = runner.store.load_record(record["job_id"])["state"]
                if state in ("done", "failed"):
                    break
                time.sleep(0.05)
        finally:
            runner.stop()
        assert runner.store.load_record(record["job_id"])["state"] == "done"


class TestCrashRecoveryBitIdentity:
    def test_killed_runner_resumes_bit_identical(self, tmp_path):
        """SIGKILL the runner mid-job (via the PR-7 checkpoint crash hook),
        recover in a fresh runner, and demand the stored result match a
        never-interrupted control byte-for-byte."""
        victim_root = tmp_path / "victim"
        control_root = tmp_path / "control"
        scenario = REPO_ROOT / "scenarios" / "fig4_smoke.yaml"
        driver = (
            "import sys\n"
            "from repro.scenarios import load_scenario\n"
            "from repro.service import JobRunner\n"
            "runner = JobRunner(sys.argv[1])\n"
            "runner.submit(load_scenario(sys.argv[2]))\n"
            "runner.run_pending()\n"
        )
        env = os.environ.copy()
        env["PYTHONPATH"] = (
            f"{SRC_ROOT}{os.pathsep}{env['PYTHONPATH']}"
            if env.get("PYTHONPATH")
            else str(SRC_ROOT)
        )
        env[CRASH_ENV] = "2"  # die right after the 2nd checkpoint write
        victim = subprocess.run(
            [sys.executable, "-c", driver, str(victim_root), str(scenario)],
            env=env,
            capture_output=True,
        )
        assert victim.returncode == -signal.SIGKILL, (
            f"crash injection did not fire: rc={victim.returncode},"
            f" stderr={victim.stderr.decode()}"
        )
        orphan = JobRunner(victim_root).store.list_records()
        assert len(orphan) == 1 and orphan[0]["state"] == "running"
        assert not JobRunner(victim_root).store.result_path(
            orphan[0]["job_id"]
        ).exists()

        recovered = JobRunner(victim_root)
        assert recovered.recover() == 1
        assert recovered.run_pending() == 1
        record = recovered.store.load_record(orphan[0]["job_id"])
        assert record["state"] == "done"
        assert record["attempts"] == 2

        control = JobRunner(control_root)
        control.submit(load_scenario(scenario))
        control.run_pending()

        resumed_bytes = recovered.store.result_path(record["job_id"]).read_bytes()
        control_bytes = control.store.result_path(record["job_id"]).read_bytes()
        assert resumed_bytes == control_bytes, (
            "resumed service result differs from the uninterrupted control"
        )


class TestServiceEndpoints:
    def test_submit_status_result_round_trip(self, tmp_path):
        runner = JobRunner(tmp_path)
        service = Service(runner, scenarios_dir=REPO_ROOT / "scenarios")
        code, record = service.submit({"library": "fig4_smoke"})
        assert code == 201
        job_id = record["job_id"]
        code, queued = service.status(job_id)
        assert code == 200 and queued["state"] == "queued"
        code, blocked = service.result(job_id)
        assert code == 409
        runner.run_pending()
        code, status = service.status(job_id)
        assert code == 200 and status["state"] == "done"
        # the status payload embeds the schema-validated run manifest
        assert validate_run_manifest(status["manifest"])
        code, result = service.result(job_id)
        assert code == 200 and result["replications"]
        # duplicate submission: 200, same job, still one record
        code, again = service.submit({"library": "fig4_smoke"})
        assert code == 200 and again["job_id"] == job_id
        assert len(runner.store.list_records()) == 1

    def test_submit_rejects_garbage(self, tmp_path):
        service = Service(JobRunner(tmp_path))
        assert service.submit(["not", "a", "mapping"])[0] == 400
        assert service.submit({"case": "case1"})[0] == 400
        assert service.submit({"library": "nope"})[0] == 400

    def test_unknown_job_is_404(self, tmp_path):
        service = Service(JobRunner(tmp_path))
        assert service.status("f" * 64)[0] == 404
        assert service.result("f" * 64)[0] == 404

    def test_healthz_reports_counters(self, tmp_path):
        runner = JobRunner(tmp_path)
        service = Service(runner)
        runner.submit(smoke_payload())
        runner.submit(smoke_payload())
        code, payload = service.healthz()
        assert code == 200
        assert payload["counters"]["submitted"] == 2
        assert payload["counters"]["deduped"] == 1

    def test_scenarios_listing(self, tmp_path):
        service = Service(JobRunner(tmp_path), scenarios_dir=REPO_ROOT / "scenarios")
        code, payload = service.list_scenarios()
        assert code == 200
        stems = {entry["library"] for entry in payload["scenarios"]}
        assert "fig4_smoke" in stems
        # without a library the endpoint degrades to empty, not an error
        assert Service(JobRunner(tmp_path)).list_scenarios() == (
            200,
            {"scenarios": []},
        )

    def test_stream_until_terminal(self, tmp_path):
        runner = JobRunner(tmp_path)
        service = Service(runner)
        record, _ = runner.submit(smoke_payload())
        runner.run_pending()
        snapshots = list(service.stream(record["job_id"], poll_s=0.01))
        assert snapshots[-1]["state"] == "done"

    def test_stream_unknown_job(self, tmp_path):
        service = Service(JobRunner(tmp_path))
        snapshots = list(service.stream("f" * 64))
        assert "error" in snapshots[0]

"""Unit tests specific to the reference engine wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.node import ConstantlySelfishPlayer, NormalPlayer
from repro.core.strategy import Strategy
from repro.game.stats import TournamentStats
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.sim.reference import ReferenceEngine


class TestConstruction:
    def test_player_types(self):
        engine = ReferenceEngine(6, 2)
        assert all(
            isinstance(engine.player(pid), NormalPlayer) for pid in range(6)
        )
        assert all(
            isinstance(engine.player(pid), ConstantlySelfishPlayer)
            for pid in (6, 7)
        )

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ReferenceEngine(0, 0)
        with pytest.raises(ValueError):
            ReferenceEngine(4, -1)

    def test_selfish_ids(self):
        engine = ReferenceEngine(6, 2)
        assert engine.selfish_ids(2) == [6, 7]
        with pytest.raises(ValueError):
            engine.selfish_ids(3)

    def test_set_strategies_validates_count(self):
        engine = ReferenceEngine(4, 0)
        with pytest.raises(ValueError):
            engine.set_strategies([Strategy.all_forward()] * 3)

    def test_set_strategies_installs(self):
        engine = ReferenceEngine(2, 0)
        engine.set_strategies([Strategy.all_drop(), Strategy.all_forward()])
        assert engine.player(0).strategy == Strategy.all_drop()
        assert engine.player(1).strategy == Strategy.all_forward()


class TestLifecycle:
    def run_once(self, engine):
        oracle = RandomPathOracle(np.random.default_rng(0), SHORTER_PATHS)
        engine.run_tournament(
            list(engine.population_ids), 4, oracle, TournamentStats(), None, None
        )

    def test_reset_generation(self):
        engine = ReferenceEngine(8, 0)
        engine.set_strategies([Strategy.all_forward()] * 8)
        self.run_once(engine)
        assert engine.fitness().sum() > 0
        engine.reset_generation()
        assert engine.fitness().sum() == 0
        assert engine.payoff_matrix().sum() == 0

    def test_payoff_matrix_layout(self):
        engine = ReferenceEngine(8, 0)
        engine.set_strategies([Strategy.all_forward()] * 8)
        self.run_once(engine)
        matrix = engine.payoff_matrix()
        assert matrix.shape == (8, 8, 2)
        # all-forward: every observation is a forward (ps == pf)
        assert np.array_equal(matrix[:, :, 0], matrix[:, :, 1])
        assert (np.diag(matrix[:, :, 0]) == 0).all()

    def test_fitness_aligned_with_ids(self):
        engine = ReferenceEngine(8, 0)
        engine.set_strategies([Strategy.all_forward()] * 8)
        self.run_once(engine)
        fitness = engine.fitness()
        for pid in range(8):
            assert fitness[pid] == engine.player(pid).payoffs.fitness

"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_reproduce_defaults(self):
        args = build_parser().parse_args(["reproduce", "fig4"])
        assert args.artefact == "fig4"
        assert args.scale == "default"
        assert args.engine == "fast"

    def test_run_case_options(self):
        args = build_parser().parse_args(
            ["run-case", "case3", "--generations", "5", "--rounds", "9"]
        )
        assert args.case == "case3"
        assert args.generations == 5
        assert args.rounds == 9


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "case4" in out

    def test_reproduce_unknown_artefact(self, capsys):
        assert main(["reproduce", "nope"]) == 2
        assert "unknown artefact" in capsys.readouterr().err

    def test_run_case_smoke(self, capsys, tmp_path):
        code = main(
            [
                "run-case",
                "case1",
                "--scale",
                "smoke",
                "--processes",
                "1",
                "--out",
                str(tmp_path / "case1.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final cooperation" in out
        assert (tmp_path / "case1.json").exists()

    def test_reproduce_smoke_artefact(self, capsys, tmp_path):
        code = main(
            [
                "reproduce",
                "table8",
                "--scale",
                "smoke",
                "--processes",
                "1",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "table8" in out
        assert (tmp_path / "table8_smoke.txt").exists()


class TestMobilityFlags:
    def test_parser_accepts_mobility_options(self):
        args = build_parser().parse_args(
            ["run-case", "mobile_waypoint", "--mobility", "gauss-markov",
             "--speed", "0.05", "--pause", "2"]
        )
        assert args.mobility == "gauss-markov"
        assert args.speed == 0.05
        assert args.pause == 2.0

    def test_parser_rejects_unknown_mobility(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-case", "case1", "--mobility", "warp"])

    def test_speed_requires_mobility(self, capsys):
        assert main(["run-case", "case1", "--scale", "smoke", "--speed", "0.1"]) == 2
        assert "--speed/--pause require --mobility" in capsys.readouterr().err

    def test_list_shows_extension_cases(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mobile_waypoint" in out
        assert "mobility" in out

    def test_run_case_with_mobility_smoke(self, capsys):
        code = main(
            ["run-case", "case1", "--scale", "smoke", "--processes", "1",
             "--generations", "1", "--rounds", "2",
             "--mobility", "waypoint", "--speed", "0.03", "--pause", "1"]
        )
        assert code == 0
        assert "final cooperation" in capsys.readouterr().out

    def test_run_case_mobility_none_disables_mobile_case(self, capsys):
        """--mobility none runs a mobile_* case on the paper's random oracle."""
        code = main(
            ["run-case", "mobile_waypoint", "--scale", "smoke", "--processes", "1",
             "--generations", "1", "--rounds", "2", "--mobility", "none"]
        )
        assert code == 0
        assert "final cooperation" in capsys.readouterr().out

"""Unit tests for the command-line interface."""

from __future__ import annotations

import json
import tomllib
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_version_agrees_with_package_metadata(self, capsys):
        """src/repro/_version.py is the single source of truth: the CLI and
        pyproject's dynamic version must both resolve to it."""
        from repro._version import __version__

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert capsys.readouterr().out.strip() == f"repro {__version__}"
        pyproject = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        assert "version" in pyproject["project"]["dynamic"]
        assert (
            pyproject["tool"]["setuptools"]["dynamic"]["version"]["attr"]
            == "repro._version.__version__"
        )

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_reproduce_defaults(self):
        args = build_parser().parse_args(["reproduce", "fig4"])
        assert args.artefact == "fig4"
        assert args.scale == "default"
        assert args.engine == "fast"

    def test_run_case_options(self):
        args = build_parser().parse_args(
            ["run-case", "case3", "--generations", "5", "--rounds", "9"]
        )
        assert args.case == "case3"
        assert args.generations == 5
        assert args.rounds == 9


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "case4" in out

    def test_reproduce_unknown_artefact(self, capsys):
        assert main(["reproduce", "nope"]) == 2
        assert "unknown artefact" in capsys.readouterr().err

    def test_run_case_smoke(self, capsys, tmp_path):
        code = main(
            [
                "run-case",
                "case1",
                "--scale",
                "smoke",
                "--processes",
                "1",
                "--out",
                str(tmp_path / "case1.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final cooperation" in out
        assert (tmp_path / "case1.json").exists()

    def test_reproduce_smoke_artefact(self, capsys, tmp_path):
        code = main(
            [
                "reproduce",
                "table8",
                "--scale",
                "smoke",
                "--processes",
                "1",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "table8" in out
        assert (tmp_path / "table8_smoke.txt").exists()


class TestMobilityFlags:
    def test_parser_accepts_mobility_options(self):
        args = build_parser().parse_args(
            ["run-case", "mobile_waypoint", "--mobility", "gauss-markov",
             "--speed", "0.05", "--pause", "2"]
        )
        assert args.mobility == "gauss-markov"
        assert args.speed == 0.05
        assert args.pause == 2.0

    def test_parser_rejects_unknown_mobility(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-case", "case1", "--mobility", "warp"])

    def test_speed_requires_mobility(self, capsys):
        assert main(["run-case", "case1", "--scale", "smoke", "--speed", "0.1"]) == 2
        assert "--speed/--pause require --mobility" in capsys.readouterr().err

    def test_list_shows_extension_cases(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mobile_waypoint" in out
        assert "mobility" in out

    def test_run_case_with_mobility_smoke(self, capsys):
        code = main(
            ["run-case", "case1", "--scale", "smoke", "--processes", "1",
             "--generations", "1", "--rounds", "2",
             "--mobility", "waypoint", "--speed", "0.03", "--pause", "1"]
        )
        assert code == 0
        assert "final cooperation" in capsys.readouterr().out

    def test_run_case_telemetry_writes_manifest(self, capsys, tmp_path):
        code = main(
            ["run-case", "case1", "--scale", "smoke", "--processes", "1",
             "--telemetry", "--telemetry-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry manifest:" in out
        manifest = tmp_path / "case1_smoke_manifest.json"
        assert manifest.exists()
        payload = json.loads(manifest.read_text())
        counters = payload["metrics"]["counters"]
        assert counters["engine.games"] == counters["evaluation.games"]

    def test_reproduce_telemetry_writes_manifest_per_case(self, capsys, tmp_path):
        code = main(
            ["reproduce", "table8", "--scale", "smoke", "--processes", "1",
             "--telemetry", "--telemetry-dir", str(tmp_path)]
        )
        assert code == 0
        assert "telemetry manifest for case3" in capsys.readouterr().out
        assert (tmp_path / "case3_smoke_manifest.json").exists()

    def test_stats_renders_manifest(self, capsys, tmp_path):
        assert main(
            ["run-case", "case1", "--scale", "smoke", "--processes", "1",
             "--telemetry", "--telemetry-dir", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        code = main(["stats", str(tmp_path / "case1_smoke_manifest.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "run manifest: case1_smoke" in out
        assert "engine.games" in out

    def test_stats_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["stats", str(tmp_path / "nope.json")]) == 2
        assert "no such manifest" in capsys.readouterr().err

    def test_stats_invalid_json_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["stats", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_stats_schema_violation_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad_manifest.json"
        bad.write_text(json.dumps({"name": "x"}))
        assert main(["stats", str(bad)]) == 2
        assert "invalid run manifest" in capsys.readouterr().err

    def test_run_case_mobility_none_disables_mobile_case(self, capsys):
        """--mobility none runs a mobile_* case on the paper's random oracle."""
        code = main(
            ["run-case", "mobile_waypoint", "--scale", "smoke", "--processes", "1",
             "--generations", "1", "--rounds", "2", "--mobility", "none"]
        )
        assert code == 0
        assert "final cooperation" in capsys.readouterr().out


class TestFaultToleranceFlags:
    def test_parser_accepts_flags_on_both_commands(self):
        for command in (["reproduce", "fig4"], ["run-case", "case1"]):
            args = build_parser().parse_args(
                command
                + ["--shards", "4", "--checkpoint-dir", "ckpt", "--resume"]
            )
            assert args.shards == 4
            assert args.checkpoint_dir == Path("ckpt")
            assert args.resume is True

    def test_shards_must_be_positive(self, capsys):
        code = main(
            ["run-case", "case1", "--scale", "smoke", "--shards", "0"]
        )
        assert code == 2
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_resume_defaults_checkpoint_dir(self, capsys, monkeypatch, tmp_path):
        """Bare --resume implies the default store; with nothing matching
        there the run refuses with the distinct no-checkpoint exit code."""
        from repro.cli import EXIT_NO_CHECKPOINT

        monkeypatch.chdir(tmp_path)
        code = main(["run-case", "case1", "--scale", "smoke", "--resume"])
        assert code == EXIT_NO_CHECKPOINT == 4
        err = capsys.readouterr().err
        assert "no checkpoints" in err
        assert str(Path("results/checkpoints")) in err

    def test_resume_wrong_store_exits_4(self, capsys, tmp_path):
        code = main(
            ["run-case", "case1", "--scale", "smoke", "--resume",
             "--checkpoint-dir", str(tmp_path / "empty")]
        )
        assert code == 4
        assert "no checkpoints matching config hash" in capsys.readouterr().err

    def test_reproduce_resume_without_checkpoints_exits_4(self, capsys, tmp_path):
        code = main(
            ["reproduce", "table8", "--scale", "smoke", "--resume",
             "--checkpoint-dir", str(tmp_path / "empty")]
        )
        assert code == 4
        assert "no checkpoints" in capsys.readouterr().err

    def test_manifest_records_checkpoint_dir(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt"
        code = main(
            ["run-case", "case1", "--scale", "smoke", "--processes", "1",
             "--telemetry", "--telemetry-dir", str(tmp_path),
             "--checkpoint-dir", str(ckpt)]
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads((tmp_path / "case1_smoke_manifest.json").read_text())
        assert payload["run"]["checkpoint_dir"] == str(ckpt)

    def test_run_case_sharded_with_checkpoints(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt"
        argv = [
            "run-case", "case1", "--scale", "smoke", "--replications", "2",
            "--processes", "1", "--shards", "2",
            "--checkpoint-dir", str(ckpt),
        ]
        assert main(argv) == 0
        assert "final cooperation" in capsys.readouterr().out
        assert list(ckpt.glob("*/rep*/gen*.json")), "no checkpoints written"
        # second run resumes from the final checkpoints and agrees
        assert main(argv + ["--resume"]) == 0
        assert "final cooperation" in capsys.readouterr().out

    def test_reproduce_accepts_checkpoint_dir(self, capsys, tmp_path):
        code = main(
            ["reproduce", "table8", "--scale", "smoke", "--processes", "1",
             "--shards", "2", "--checkpoint-dir", str(tmp_path / "ckpt")]
        )
        assert code == 0
        assert "table8" in capsys.readouterr().out
        assert list((tmp_path / "ckpt").glob("*/rep*/gen*.json"))

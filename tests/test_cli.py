"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_reproduce_defaults(self):
        args = build_parser().parse_args(["reproduce", "fig4"])
        assert args.artefact == "fig4"
        assert args.scale == "default"
        assert args.engine == "fast"

    def test_run_case_options(self):
        args = build_parser().parse_args(
            ["run-case", "case3", "--generations", "5", "--rounds", "9"]
        )
        assert args.case == "case3"
        assert args.generations == 5
        assert args.rounds == 9


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "case4" in out

    def test_reproduce_unknown_artefact(self, capsys):
        assert main(["reproduce", "nope"]) == 2
        assert "unknown artefact" in capsys.readouterr().err

    def test_run_case_smoke(self, capsys, tmp_path):
        code = main(
            [
                "run-case",
                "case1",
                "--scale",
                "smoke",
                "--processes",
                "1",
                "--out",
                str(tmp_path / "case1.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final cooperation" in out
        assert (tmp_path / "case1.json").exists()

    def test_reproduce_smoke_artefact(self, capsys, tmp_path):
        code = main(
            [
                "reproduce",
                "table8",
                "--scale",
                "smoke",
                "--processes",
                "1",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "table8" in out
        assert (tmp_path / "table8_smoke.txt").exists()

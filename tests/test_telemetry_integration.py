"""End-to-end telemetry: counters reconcile with engine ground truth.

The acceptance bar for the telemetry layer is that an instrumented run's
aggregated counters equal what the engines actually did — games played
counted independently by the engine layer (``engine.games``) and the
evaluation layer (``evaluation.games``, from the tournament stats the
paper's numbers come from) must match exactly — and that instrumentation
never perturbs simulation results (telemetry reads no RNG).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import ReproductionSession
from repro.experiments.replication import run_replication
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import run_experiment
from repro.telemetry import TelemetryConfig
from repro.utils.validation import validate_run_manifest


def telemetry_config(case: str, **overrides) -> ExperimentConfig:
    config = ExperimentConfig.for_case(case, scale="smoke", **overrides)
    return config.with_(telemetry=TelemetryConfig(enabled=True))


@pytest.fixture(scope="module")
def smoke_result() -> ExperimentResult:
    return run_experiment(telemetry_config("case1"), processes=1)


class TestReconciliation:
    def test_games_reconcile_across_layers(self, smoke_result):
        counters = smoke_result.telemetry["metrics"]["counters"]
        assert counters["engine.games"] > 0
        assert counters["engine.games"] == counters["evaluation.games"]

    def test_round_and_tournament_counts(self, smoke_result):
        config = telemetry_config("case1")
        counters = smoke_result.telemetry["metrics"]["counters"]
        assert (
            counters["engine.rounds"]
            == counters["engine.tournaments"] * config.sim.rounds
        )
        assert counters["evaluation.generations"] == (
            config.generations * config.replications
        )
        # one GA step per generation except the last, per replication
        assert counters["ga.generations"] == (
            (config.generations - 1) * config.replications
        )

    def test_pool_metrics_cover_all_replications(self, smoke_result):
        config = telemetry_config("case1")
        metrics = smoke_result.telemetry["metrics"]
        assert metrics["counters"]["parallel.tasks"] == config.replications
        assert metrics["histograms"]["parallel.task_s"]["count"] == (
            config.replications
        )
        assert 0.0 < metrics["gauges"]["parallel.utilization"] <= 1.0

    def test_ga_timers_and_diversity(self, smoke_result):
        metrics = smoke_result.telemetry["metrics"]
        for name in ("ga.selection_s", "ga.crossover_s", "ga.mutation_s"):
            assert metrics["timers"][name]["count"] > 0
        assert 0.0 < metrics["gauges"]["ga.diversity"] <= 1.0

    def test_span_tree_present(self, smoke_result):
        timers = smoke_result.telemetry["metrics"]["timers"]
        config = telemetry_config("case1")
        expected_generations = config.generations * config.replications
        assert timers["span.generation"]["count"] == expected_generations
        assert "span.generation/tournament" in timers
        assert timers["span.generation/tournament/round"]["count"] > 0

    def test_events_recorded(self, smoke_result):
        events = smoke_result.telemetry["events"]
        assert any(event.get("event") == "span" for event in events)
        assert smoke_result.telemetry["wall_s"] > 0.0


class TestProcessPoolParity:
    def test_worker_processes_ship_telemetry(self):
        """Counters harvested in worker processes merge into the parent:
        the serial and two-worker runs reconcile to identical game counts."""
        config = telemetry_config("case1", replications=2)
        serial = run_experiment(config, processes=1)
        pooled = run_experiment(config, processes=2)
        serial_counters = serial.telemetry["metrics"]["counters"]
        pooled_counters = pooled.telemetry["metrics"]["counters"]
        for name in ("engine.games", "evaluation.games", "ga.crossovers"):
            assert serial_counters[name] == pooled_counters[name]
        assert pooled_counters["engine.games"] == pooled_counters[
            "evaluation.games"
        ]


class TestOracleCounters:
    def test_mobile_approx_counters(self):
        config = telemetry_config("mobile_waypoint").with_route_cache("approx", 8)
        result = run_experiment(config, processes=1)
        metrics = result.telemetry["metrics"]
        counters = metrics["counters"]
        lookups = counters["route.approx.cache_hits"] + (
            counters["route.approx.cache_misses"]
        )
        assert lookups > 0
        # every miss triggers at most one full compute; stale serves and
        # revalidations only exist on the approx policy
        assert counters["route.approx.route_computes"] <= (
            counters["route.approx.cache_misses"]
        )
        assert counters["route.approx.stale_serves"] >= 0
        assert metrics["gauges"]["route.drift_budget"] == 8
        assert counters["mobility.steps"] > 0
        assert counters["ksp.queries"] > 0

    def test_turbo_replay_counter(self):
        config = telemetry_config("case1", engine="turbo")
        result = run_experiment(config, processes=1)
        counters = result.telemetry["metrics"]["counters"]
        assert 0 <= counters["engine.turbo.replayed_games"]
        assert counters["engine.turbo.replayed_games"] <= counters["engine.games"]
        assert counters["engine.games"] == counters["evaluation.games"]


class TestNeutrality:
    def test_telemetry_does_not_change_results(self):
        """Instrumentation must consume no RNG and perturb nothing."""
        config = ExperimentConfig.for_case("case1", scale="smoke")
        plain = run_replication(config, 0)
        instrumented = run_replication(
            config.with_(telemetry=TelemetryConfig(enabled=True)), 0
        )
        assert instrumented.telemetry is not None
        assert plain.telemetry is None
        assert plain.history.to_dict() == instrumented.history.to_dict()
        assert plain.final_population == instrumented.final_population
        assert plain.final_overall.to_dict() == instrumented.final_overall.to_dict()

    def test_disabled_run_attaches_no_telemetry(self):
        config = ExperimentConfig.for_case("case1", scale="smoke")
        result = run_experiment(config, processes=1)
        assert result.telemetry is None
        assert "telemetry" not in result.to_dict()


class TestPersistence:
    def test_experiment_result_round_trips_telemetry(self, smoke_result, tmp_path):
        path = smoke_result.save(tmp_path / "case1.json")
        loaded = ExperimentResult.load(path)
        assert loaded.telemetry == smoke_result.telemetry

    def test_session_writes_validated_manifest(self, tmp_path):
        session = ReproductionSession(
            scale="smoke",
            processes=1,
            telemetry=True,
            telemetry_dir=tmp_path,
        )
        session.result_for("case1")
        manifest_path = session.manifests["case1"]
        assert manifest_path == tmp_path / "case1_smoke_manifest.json"
        import json

        payload = json.loads(manifest_path.read_text())
        validate_run_manifest(payload, name="session manifest")
        assert payload["run"]["case"] == "case1"
        counters = payload["metrics"]["counters"]
        assert counters["engine.games"] == counters["evaluation.games"]
        assert (tmp_path / "case1_smoke_metrics.jsonl").exists()

    def test_session_without_telemetry_writes_nothing(self, tmp_path):
        session = ReproductionSession(
            scale="smoke", processes=1, telemetry_dir=tmp_path
        )
        session.result_for("case1")
        assert session.manifests == {}
        assert list(tmp_path.iterdir()) == []

"""Unit and property tests for Eq. (1) fitness accounting."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.fitness import PayoffAccumulator

payoff_values = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)


class TestAccumulation:
    def test_empty_fitness_is_zero(self):
        assert PayoffAccumulator().fitness == 0.0

    def test_single_send(self):
        acc = PayoffAccumulator()
        acc.record_send(5.0)
        assert acc.fitness == 5.0
        assert acc.n_events == 1

    def test_eq1_mixed_events(self):
        acc = PayoffAccumulator()
        acc.record_send(5.0)  # tps = 5
        acc.record_forward(3.0)  # tpf = 3
        acc.record_forward(1.0)  # tpf = 4
        acc.record_discard(2.0)  # tpd = 2
        assert acc.total_payoff == 11.0
        assert acc.n_events == 4
        assert acc.fitness == 11.0 / 4

    def test_category_counters(self):
        acc = PayoffAccumulator()
        acc.record_send(0.0)
        acc.record_forward(1.0)
        acc.record_discard(2.0)
        assert (acc.n_sent, acc.n_forwarded, acc.n_discarded) == (1, 1, 1)

    def test_reset(self):
        acc = PayoffAccumulator()
        acc.record_send(5.0)
        acc.reset()
        assert acc.fitness == 0.0
        assert acc.n_events == 0
        assert acc.total_payoff == 0.0

    def test_merge(self):
        a, b = PayoffAccumulator(), PayoffAccumulator()
        a.record_send(5.0)
        b.record_forward(3.0)
        b.record_discard(1.0)
        a.merge(b)
        assert a.n_events == 3
        assert a.total_payoff == 9.0


class TestProperties:
    @given(st.lists(payoff_values, max_size=30))
    def test_fitness_bounded_by_max_single_payoff(self, values):
        acc = PayoffAccumulator()
        for v in values:
            acc.record_send(v)
        if values:
            assert 0.0 <= acc.fitness <= max(values) + 1e-12

    @given(
        st.lists(payoff_values, max_size=10),
        st.lists(payoff_values, max_size=10),
        st.lists(payoff_values, max_size=10),
    )
    def test_fitness_is_mean_over_all_events(self, sends, forwards, discards):
        acc = PayoffAccumulator()
        for v in sends:
            acc.record_send(v)
        for v in forwards:
            acc.record_forward(v)
        for v in discards:
            acc.record_discard(v)
        events = len(sends) + len(forwards) + len(discards)
        if events:
            expected = (sum(sends) + sum(forwards) + sum(discards)) / events
            assert abs(acc.fitness - expected) < 1e-9

    @given(st.lists(payoff_values, min_size=1, max_size=20))
    def test_merge_equals_sequential(self, values):
        merged = PayoffAccumulator()
        sequential = PayoffAccumulator()
        half = len(values) // 2
        a, b = PayoffAccumulator(), PayoffAccumulator()
        for v in values[:half]:
            a.record_forward(v)
            sequential.record_forward(v)
        for v in values[half:]:
            b.record_forward(v)
            sequential.record_forward(v)
        merged.merge(a)
        merged.merge(b)
        # merge sums partial totals, so only float-associativity differences
        # are tolerated
        assert merged.n_events == sequential.n_events
        assert abs(merged.fitness - sequential.fitness) < 1e-9

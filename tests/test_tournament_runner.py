"""Unit tests for the tournament runner (§4.4 tournament scheme)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.node import AlwaysForwardPlayer, ConstantlySelfishPlayer
from repro.game.stats import TournamentStats
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import GameSetup, RandomPathOracle
from repro.reputation.exchange import ExchangeConfig
from repro.tournament.runner import run_tournament

from tests.conftest import make_players, scripted_tournament_oracle


class TestStructure:
    def test_every_player_sources_once_per_round(
        self, trust_table, activity, payoffs
    ):
        players = make_players(6)
        participants = list(range(6))
        rounds = 4
        seen: list[int] = []

        def make_setup(round_no, source):
            seen.append(source)
            others = [p for p in participants if p != source]
            return GameSetup(
                source=source,
                destination=others[0],
                paths=((others[1],),),
            )

        oracle = scripted_tournament_oracle(participants, rounds, make_setup)
        stats = run_tournament(
            players, participants, rounds, oracle, trust_table, activity, payoffs
        )
        assert seen == participants * rounds
        assert stats.nn_originated == 6 * rounds
        assert oracle.remaining == 0

    def test_rounds_validated(self, trust_table, activity, payoffs, rng):
        players = make_players(5)
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        with pytest.raises(ValueError):
            run_tournament(
                players, list(range(5)), 0, oracle, trust_table, activity, payoffs
            )

    def test_all_forward_population_fully_cooperates(
        self, trust_table, activity, payoffs, rng
    ):
        players = make_players(10)
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        stats = run_tournament(
            players, list(range(10)), 20, oracle, trust_table, activity, payoffs
        )
        assert stats.cooperation_level == 1.0
        assert stats.nn_csn_free_fraction == 1.0

    def test_all_selfish_intermediates_kill_everything(
        self, trust_table, activity, payoffs, rng
    ):
        players = {0: AlwaysForwardPlayer(0)}
        for pid in range(1, 8):
            players[pid] = ConstantlySelfishPlayer(pid)
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        stats = run_tournament(
            players, list(range(8)), 10, oracle, trust_table, activity, payoffs
        )
        assert stats.nn_delivered == 0


class TestPathChoiceStats:
    def test_csn_free_fraction_counts_chosen_paths(
        self, trust_table, activity, payoffs
    ):
        players = make_players(4, n_selfish=1)  # ids 0-3 altruists, 4 CSN
        participants = list(range(5))

        def make_setup(round_no, source):
            others = [p for p in participants if p != source and p != 4]
            dest = others[0]
            vias = others[1:]
            # Two candidate paths: a clean one first, then one through the
            # CSN (or a second clean one when the CSN itself is the source).
            second = (4,) if source != 4 else (vias[1],)
            return GameSetup(
                source=source,
                destination=dest,
                paths=((vias[0],), second),
            )

        oracle = scripted_tournament_oracle(participants, 1, make_setup)
        stats = run_tournament(
            players, participants, 1, oracle, trust_table, activity, payoffs
        )
        # All sources initially rate both paths 0.5; first (clean) path wins
        # the tie, so every chosen path is CSN-free.
        assert stats.nn_paths_chosen == 4
        assert stats.csn_paths_chosen == 1
        assert stats.nn_csn_free_fraction == 1.0


class TestExchangeIntegration:
    def test_exchange_requires_rng(self, trust_table, activity, payoffs, rng):
        players = make_players(6)
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        with pytest.raises(ValueError, match="requires an rng"):
            run_tournament(
                players,
                list(range(6)),
                2,
                oracle,
                trust_table,
                activity,
                payoffs,
                exchange=ExchangeConfig(enabled=True),
            )

    def test_exchange_spreads_reputation(self, trust_table, activity, payoffs):
        rng = np.random.default_rng(0)
        players = make_players(8)
        oracle = RandomPathOracle(np.random.default_rng(1), SHORTER_PATHS)
        run_tournament(
            players,
            list(range(8)),
            6,
            oracle,
            trust_table,
            activity,
            payoffs,
            exchange=ExchangeConfig(enabled=True, interval=2, fanout=3),
            rng=rng,
        )
        # after gossip, players know far more than first-hand contact allows
        known = sum(players[p].reputation.n_known for p in range(8))
        assert known >= 8 * 5

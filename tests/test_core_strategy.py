"""Unit and property tests for the 13-bit strategy encoding (§3.3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.activity import Activity
from repro.core.strategy import (
    N_ACTIVITY_LEVELS,
    N_TRUST_LEVELS,
    STRATEGY_LENGTH,
    UNKNOWN_BIT,
    Strategy,
    gene_index,
)

strategy_bits = st.lists(st.integers(0, 1), min_size=13, max_size=13).map(tuple)


class TestGeneIndex:
    def test_layout_constants(self):
        assert STRATEGY_LENGTH == 13
        assert UNKNOWN_BIT == 12
        assert N_TRUST_LEVELS == 4
        assert N_ACTIVITY_LEVELS == 3

    @pytest.mark.parametrize(
        "trust,activity,expected",
        [(0, 0, 0), (0, 2, 2), (1, 0, 3), (2, 1, 7), (3, 0, 9), (3, 2, 11)],
    )
    def test_index_formula(self, trust, activity, expected):
        assert gene_index(trust, activity) == expected

    def test_accepts_activity_enum(self):
        assert gene_index(2, Activity.HI) == 8

    def test_rejects_bad_trust(self):
        with pytest.raises(ValueError):
            gene_index(4, 0)
        with pytest.raises(ValueError):
            gene_index(-1, 0)

    def test_rejects_bad_activity(self):
        with pytest.raises(ValueError):
            gene_index(0, 3)

    def test_indices_are_a_bijection(self):
        seen = {
            gene_index(t, a)
            for t in range(N_TRUST_LEVELS)
            for a in range(N_ACTIVITY_LEVELS)
        }
        assert seen == set(range(12))


class TestConstruction:
    def test_requires_13_bits(self):
        with pytest.raises(ValueError):
            Strategy((0,) * 12)

    def test_from_string_grouped(self):
        s = Strategy.from_string("010 101 101 111 1")
        assert s.bits == (0, 1, 0, 1, 0, 1, 1, 0, 1, 1, 1, 1, 1)

    def test_all_forward_all_drop(self):
        assert all(Strategy.all_forward().bits)
        assert not any(Strategy.all_drop().bits)

    def test_random_uses_rng(self):
        a = Strategy.random(np.random.default_rng(1))
        b = Strategy.random(np.random.default_rng(1))
        assert a == b

    def test_random_varies(self):
        rng = np.random.default_rng(2)
        assert len({Strategy.random(rng) for _ in range(50)}) > 10


class TestDecisions:
    def test_decide_reads_correct_bit(self):
        bits = [0] * 13
        bits[gene_index(2, 1)] = 1
        s = Strategy(bits)
        assert s.decide(2, 1) is True
        assert s.decide(2, 0) is False

    def test_decide_unknown_reads_bit12(self):
        bits = [0] * 13
        bits[12] = 1
        assert Strategy(bits).decide_unknown() is True

    def test_all_forward_forwards_everywhere(self):
        s = Strategy.all_forward()
        for t in range(4):
            for a in range(3):
                assert s.decide(t, a)
        assert s.decide_unknown()


class TestViews:
    def test_sub_strategy_blocks(self):
        s = Strategy.from_string("010 101 110 111 0")
        assert s.sub_strategy(0) == "010"
        assert s.sub_strategy(1) == "101"
        assert s.sub_strategy(2) == "110"
        assert s.sub_strategy(3) == "111"

    def test_sub_strategy_rejects_bad_trust(self):
        with pytest.raises(ValueError):
            Strategy.all_forward().sub_strategy(4)

    def test_forwarding_fraction(self):
        assert Strategy.all_forward().forwarding_fraction() == 1.0
        assert Strategy.all_drop().forwarding_fraction() == 0.0

    def test_as_array(self):
        arr = Strategy.from_string("000 111 000 111 1").as_array()
        assert arr.dtype == np.uint8
        assert arr.tolist() == [0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1, 1]

    def test_len_iter_getitem(self):
        s = Strategy.all_forward()
        assert len(s) == 13
        assert list(s) == [1] * 13
        assert s[5] == 1


class TestEqualityAndHashing:
    def test_equal_strategies_hash_equal(self):
        a = Strategy.from_string("010 101 101 111 1")
        b = Strategy.from_string("0101011011111")
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal(self):
        assert Strategy.all_forward() != Strategy.all_drop()

    def test_not_equal_to_other_types(self):
        assert Strategy.all_forward() != (1,) * 13

    def test_usable_in_counter(self):
        from collections import Counter

        c = Counter([Strategy.all_forward(), Strategy.all_forward()])
        assert c[Strategy.all_forward()] == 2


class TestRoundTrips:
    @given(strategy_bits)
    def test_int_roundtrip(self, bits):
        s = Strategy(bits)
        assert Strategy.from_int(s.to_int()) == s

    @given(strategy_bits)
    def test_string_roundtrip(self, bits):
        s = Strategy(bits)
        assert Strategy.from_string(s.to_string()) == s

    @given(strategy_bits)
    def test_sub_strategies_tile_the_genome(self, bits):
        s = Strategy(bits)
        joined = "".join(s.sub_strategy(t) for t in range(4))
        expected = "".join(str(b) for b in bits[:12])
        assert joined == expected

    @given(strategy_bits, st.integers(0, 3), st.integers(0, 2))
    def test_decide_matches_bits(self, bits, trust, activity):
        s = Strategy(bits)
        assert s.decide(trust, activity) == bool(bits[gene_index(trust, activity)])

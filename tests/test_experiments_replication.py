"""Unit tests for single-replication runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategy import STRATEGY_LENGTH, Strategy
from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import ReplicationResult, run_replication


def smoke_config(**overrides) -> ExperimentConfig:
    return ExperimentConfig.for_case("case1", scale="smoke", **overrides)


class TestRunReplication:
    def test_history_length_matches_generations(self):
        result = run_replication(smoke_config(), 0)
        assert result.history.n_generations == smoke_config().generations

    def test_final_population_size(self):
        result = run_replication(smoke_config(), 0)
        cfg = smoke_config()
        assert len(result.final_population) == cfg.ga.population_size
        for packed in result.final_population:
            s = Strategy.from_int(packed)
            assert len(s) == STRATEGY_LENGTH

    def test_final_stats_cover_case_environments(self):
        result = run_replication(smoke_config(), 0)
        assert set(result.final_per_env) == {"TE1"}
        assert result.final_overall.nn_originated > 0

    def test_deterministic_per_index(self):
        a = run_replication(smoke_config(), 1)
        b = run_replication(smoke_config(), 1)
        assert a.history.to_dict() == b.history.to_dict()
        assert a.final_population == b.final_population

    def test_indices_are_independent_streams(self):
        a = run_replication(smoke_config(), 0)
        b = run_replication(smoke_config(), 1)
        assert a.history.to_dict() != b.history.to_dict()

    def test_seed_changes_everything(self):
        a = run_replication(smoke_config(seed=1), 0)
        b = run_replication(smoke_config(seed=2), 0)
        assert a.final_population != b.final_population

    def test_cooperation_values_are_probabilities(self):
        result = run_replication(smoke_config(), 0)
        series = result.history.cooperation_series()
        assert ((0.0 <= series) & (series <= 1.0)).all()

    def test_final_strategies_helper(self):
        result = run_replication(smoke_config(), 0)
        strategies = result.final_strategies()
        assert all(isinstance(s, Strategy) for s in strategies)


class TestReplicationResultSerialization:
    def test_dict_roundtrip(self):
        result = run_replication(smoke_config(), 0)
        restored = ReplicationResult.from_dict(result.to_dict())
        assert restored.to_dict() == result.to_dict()
        assert restored.history.n_generations == result.history.n_generations

    def test_roundtrip_carries_checkpoint_payload(self, tmp_path):
        result = run_replication(smoke_config(), 0, checkpoint_dir=tmp_path)
        assert result.checkpoint is not None
        data = result.to_dict()
        assert data["checkpoint"]["checkpoints_written"] > 0
        restored = ReplicationResult.from_dict(data)
        assert restored.checkpoint == result.checkpoint
        assert restored.to_dict() == data

    def test_checkpoint_payload_excluded_from_equality(self, tmp_path):
        """A resumed run must compare equal to the uninterrupted control,
        so the provenance block stays out of dataclass equality."""
        plain = run_replication(smoke_config(), 0)
        checkpointed = run_replication(smoke_config(), 0, checkpoint_dir=tmp_path)
        assert plain.checkpoint is None
        assert checkpointed.checkpoint is not None
        assert plain == checkpointed

    def test_roundtrip_without_checkpoint_omits_key(self):
        data = run_replication(smoke_config(), 0).to_dict()
        assert "checkpoint" not in data
        assert ReplicationResult.from_dict(data).checkpoint is None

    def test_multi_env_case(self):
        cfg = ExperimentConfig.for_case("case3", scale="smoke")
        result = run_replication(cfg, 0)
        assert set(result.final_per_env) == {"TE1", "TE2", "TE3", "TE4"}
        # TE1 has no CSN: its csn request counter must be empty
        assert result.final_per_env["TE1"].requests_from_csn.total == 0
        assert result.final_per_env["TE4"].requests_from_csn.total > 0

"""The paper's worked examples (Figs. 1 and 2) as executable assertions.

These tests pin the implementation to the exact micro-scenarios the paper
illustrates: the watchdog update pattern of Fig. 1a, the trust lookup of
Fig. 1b, the strategy coding of Fig. 1c, and the example game of Fig. 2b.
"""

from __future__ import annotations

import pytest

from repro.core.node import (
    AlwaysForwardPlayer,
    ConstantlySelfishPlayer,
    NormalPlayer,
    ThresholdPlayer,
)
from repro.core.payoff import PayoffConfig
from repro.core.strategy import Strategy
from repro.game.engine import play_game
from repro.game.stats import TournamentStats
from repro.paths.oracle import GameSetup
from repro.reputation.activity import ActivityClassifier
from repro.reputation.trust import TrustTable

from tests.conftest import seed_reputation

A, B, C, D, E = range(5)


class TestFig1aWatchdogExample:
    """A sends to E via B, C, D; D discards (Fig. 1a)."""

    @pytest.fixture
    def game(self, trust_table, activity, payoffs):
        players = {
            A: AlwaysForwardPlayer(A),
            B: AlwaysForwardPlayer(B),
            C: AlwaysForwardPlayer(C),
            D: ConstantlySelfishPlayer(D),
            E: AlwaysForwardPlayer(E),
        }
        setup = GameSetup(source=A, destination=E, paths=((B, C, D),))
        result = play_game(
            players, setup, 0, trust_table, activity, payoffs, TournamentStats()
        )
        return players, result

    def test_transmission_fails_at_d(self, game):
        _, result = game
        assert not result.success
        assert result.dropper == D

    def test_source_updates_about_b_c_d(self, game):
        players, _ = game
        table = players[A].reputation
        assert table.snapshot() == {B: (1, 1), C: (1, 1), D: (1, 0)}

    def test_b_updates_about_c_d(self, game):
        players, _ = game
        assert players[B].reputation.snapshot() == {C: (1, 1), D: (1, 0)}

    def test_c_updates_about_b_d(self, game):
        players, _ = game
        assert players[C].reputation.snapshot() == {B: (1, 1), D: (1, 0)}

    def test_dropper_records_nothing(self, game):
        players, _ = game
        assert players[D].reputation.snapshot() == {}

    def test_destination_not_involved(self, game):
        players, _ = game
        assert players[E].reputation.snapshot() == {}
        assert players[E].payoffs.n_events == 0

    def test_nobody_records_about_the_source(self, game):
        players, _ = game
        for pid in (B, C, D, E):
            assert A not in players[pid].reputation.snapshot()


class TestFig1bTrustLookup:
    """The trust lookup table of Fig. 1b."""

    def test_worked_example_095_gives_trust3(self):
        assert TrustTable().level(0.95) == 3

    @pytest.mark.parametrize(
        "rate,expected",
        [
            (1.0, 3),
            (0.91, 3),
            (0.9, 2),
            (0.61, 2),
            (0.6, 1),
            (0.31, 1),
            (0.3, 0),
            (0.0, 0),
            (0.5, 1),  # the unknown-node default rate maps to trust 1
        ],
    )
    def test_bins(self, rate, expected):
        assert TrustTable().level(rate) == expected


class TestFig1cStrategyCoding:
    """The example strategy 'DDD FFF DDD FDD F' of Fig. 1c."""

    # D=0 (discard), F=1 (forward)
    EXAMPLE = Strategy.from_string("000 111 000 100 1")

    def test_bit9_trust3_lo_forwards(self):
        # "assuming trust level 3 and activity LO ... forward (F, bit no. 9)"
        assert self.EXAMPLE.decide(trust=3, activity=0) is True

    def test_trust0_always_discards(self):
        for act in range(3):
            assert self.EXAMPLE.decide(trust=0, activity=act) is False

    def test_trust1_always_forwards(self):
        for act in range(3):
            assert self.EXAMPLE.decide(trust=1, activity=act) is True

    def test_trust3_mi_hi_discard(self):
        assert self.EXAMPLE.decide(trust=3, activity=1) is False
        assert self.EXAMPLE.decide(trust=3, activity=2) is False

    def test_unknown_bit_forwards(self):
        assert self.EXAMPLE.decide_unknown() is True

    def test_display_roundtrip(self):
        assert self.EXAMPLE.to_string() == "000 111 000 100 1"


class TestFig2bExampleGame:
    """A -> D via B, C; B forwards (trust 3), C discards (trust 1)."""

    @pytest.fixture
    def game(self, trust_table, activity):
        payoffs = PayoffConfig()
        players = {
            A: AlwaysForwardPlayer(A),
            B: ThresholdPlayer(B, min_trust=3),
            C: ThresholdPlayer(C, min_trust=2),
            D: AlwaysForwardPlayer(D),
        }
        # B trusts A at level 3 (fr = 19/20 = 0.95), C at level 1 (fr = 0.5).
        seed_reputation(players[B], A, forwarded=19, dropped=1)
        seed_reputation(players[C], A, forwarded=1, dropped=1)
        setup = GameSetup(source=A, destination=D, paths=((B, C),))
        stats = TournamentStats()
        result = play_game(players, setup, 0, trust_table, activity, payoffs, stats)
        return players, result, stats

    def test_b_forwards_c_discards(self, game):
        _, result, _ = game
        assert [d.forward for d in result.decisions] == [True, False]
        assert [d.trust for d in result.decisions] == [3, 1]

    def test_transmission_fails(self, game):
        _, result, _ = game
        assert not result.success

    def test_source_gets_failure_payoff(self, game):
        players, _, _ = game
        assert players[A].payoffs.send_payoff == 0.0
        assert players[A].payoffs.n_sent == 1

    def test_intermediate_payoffs_follow_trust(self, game):
        players, _, _ = game
        payoffs = PayoffConfig()
        # forwarding for a trust-3 source pays the top forward payoff
        assert players[B].payoffs.forward_payoff == payoffs.forward_by_trust[3]
        # discarding a trust-1 source pays the trust-1 discard payoff
        assert players[C].payoffs.discard_payoff == payoffs.discard_by_trust[1]

    def test_success_payoff_is_5(self):
        assert PayoffConfig().source_payoff(True) == 5.0
        assert PayoffConfig().source_payoff(False) == 0.0

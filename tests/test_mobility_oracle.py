"""Tests for MobilePathOracle: caching, clocking, engine integration.

The acceptance-critical properties live here: both engines complete a
smoke-scale GA run through the mobile oracle with bit-identical results,
and identical seeds give identical experiments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.mobility import MobilityConfig
from repro.config.presets import environment_with_csn
from repro.core.strategy import Strategy
from repro.experiments.cases import EvaluationCase
from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import run_replication
from repro.game.stats import TournamentStats
from repro.mobility import (
    DynamicTopology,
    MobilePathOracle,
    RandomWaypoint,
    build_oracle,
)
from repro.sim import make_engine
from repro.tournament.evaluation import evaluate_generation

N = 20
RADIO = 0.45
IDS = list(range(N))


def make_oracle(speed=(0.01, 0.06), seed=0, **kwargs) -> MobilePathOracle:
    model = RandomWaypoint(*speed, pause_time=1.0)
    topo = DynamicTopology(IDS, RADIO, model, np.random.default_rng(seed))
    return MobilePathOracle(topo, np.random.default_rng(seed + 1), **kwargs)


class TestDraw:
    def test_valid_setup(self):
        oracle = make_oracle()
        setup = oracle.draw(0, IDS)
        assert setup.source == 0
        assert setup.destination in IDS and setup.destination != 0
        assert setup.paths

    def test_paths_restricted_to_participants(self):
        oracle = make_oracle()
        scope = IDS[::2]
        for _ in range(30):
            setup = oracle.draw(0, scope)
            assert setup.destination in scope
            for path in setup.paths:
                assert set(path) <= set(scope)

    def test_unroutable_raises_descriptively(self):
        oracle = make_oracle()
        # two adjacent participants only: every route needs an intermediate,
        # none is in scope, and the emergency boost cannot mint one either
        neighbour = next(iter(oracle.topology.graph[0]))
        with pytest.raises(RuntimeError, match="no routable destination"):
            oracle.draw(0, [0, neighbour])

    def test_step_every_validation(self):
        with pytest.raises(ValueError):
            make_oracle(step_every="sometimes")
        with pytest.raises(ValueError):
            make_oracle(step_every=0)


class TestCaching:
    def test_static_phase_serves_from_cache(self):
        oracle = make_oracle(speed=(0.0, 0.0), step_every=10**9)
        oracle.draw(0, IDS)
        # repeat queries for a pair computed in the first draw: all hits
        source, destination = next(iter(oracle._cache))
        _, misses = oracle.cache_info
        first = oracle._candidate_paths(source, destination)
        assert oracle._candidate_paths(source, destination) == first
        hits2, misses2 = oracle.cache_info
        assert misses2 == misses
        assert hits2 >= 2

    def test_static_phase_misses_bounded_by_pair_count(self):
        oracle = make_oracle(speed=(0.0, 0.0), step_every=10**9)
        for _ in range(40):
            for source in IDS:
                oracle.draw(source, IDS)
        hits, misses = oracle.cache_info
        assert misses <= N * (N - 1)
        assert hits > misses  # the static network is overwhelmingly cached

    def test_epoch_change_invalidates(self):
        oracle = make_oracle(speed=(0.05, 0.1), step_every=10**9)
        for source in IDS:
            oracle.draw(source, IDS)
        _, misses1 = oracle.cache_info
        epoch = oracle.topology.epoch
        oracle.advance_epoch()
        assert oracle.topology.epoch > epoch
        for source in IDS:
            oracle.draw(source, IDS)
        _, misses2 = oracle.cache_info
        assert misses2 > misses1

    def test_participant_change_invalidates(self):
        oracle = make_oracle(speed=(0.0, 0.0), step_every=10**9)
        oracle.draw(0, IDS)
        _, misses1 = oracle.cache_info
        oracle.draw(0, IDS[:15])  # smaller scope: cached routes unusable
        _, misses2 = oracle.cache_info
        assert misses2 > misses1

    def test_boosted_routes_are_not_cached(self):
        """Routes minted through the emergency nearest-peer attach depend on
        positions that can drift without an epoch change: never cache them."""
        oracle = make_oracle(speed=(0.0, 0.0), step_every=10**9)
        topo = oracle.topology
        neighbours = set(topo.graph[0])
        scope = [n for n in IDS if n not in neighbours]
        assert 0 in scope
        oracle._rescope(scope)
        destination = next(d for d in scope if d != 0)
        first = oracle._candidate_paths(0, destination)
        if not first:  # isolated destination: pick one the boost can reach
            destination = next(
                d for d in scope if d != 0 and oracle._candidate_paths(0, d)
            )
        assert topo.boost_count > 0
        assert (0, destination) not in oracle._cache

    def test_same_participant_object_is_free(self):
        oracle = make_oracle(speed=(0.0, 0.0), step_every=10**9)
        participants = list(IDS)
        oracle.draw(0, participants)
        scope = oracle._scope
        oracle.draw(1, participants)
        assert oracle._scope is scope

    def test_in_place_churn_of_same_list_is_detected(self):
        """Regression: mutating the *same* participants list in place (node
        churn between rounds) used to slip past the identity check, serving
        stale cached routes for departed nodes."""
        oracle = make_oracle(speed=(0.0, 0.0), step_every=10**9)
        participants = list(IDS)
        oracle.draw(0, participants)
        cached_pairs = set(oracle._cache)
        assert cached_pairs  # the draw populated the cache
        departed = participants[-1]
        participants.remove(departed)  # same list object, node churned out
        for _ in range(60):
            setup = oracle.draw(0, participants)
            assert setup.destination != departed
            for path in setup.paths:
                assert departed not in path
        assert departed not in oracle._scope

    def test_in_place_swap_same_length_and_sum_is_detected(self):
        """The detection is an exact contents comparison, so even a
        sum- and length-preserving in-place swap (the case a hash or sum
        fingerprint would miss) rescopes."""
        oracle = make_oracle(speed=(0.0, 0.0), step_every=10**9)
        participants = list(IDS[:15])
        oracle.draw(0, participants)
        scope_before = oracle._scope
        # replace the pair (13, 14) with (11, 16): same list length, same
        # id sum — undetectable by a (len, sum) fingerprint
        participants.remove(13)
        participants.remove(14)
        participants.extend([11, 16])
        oracle.draw(0, participants)
        assert oracle._scope != scope_before
        assert 16 in oracle._scope
        assert 14 not in oracle._scope


class TestDrawTournament:
    """The batched draw path must be stream-identical to per-game draws —
    including the draw-count-clocked topology stepping, which shares the
    random stream with the draws themselves."""

    @pytest.mark.parametrize("step_every", ["round", "tournament", 7])
    @pytest.mark.parametrize("seed", [0, 5])
    def test_stream_identical_to_sequential_draws(self, step_every, seed):
        batched = make_oracle(seed=seed, step_every=step_every)
        sequential = make_oracle(seed=seed, step_every=step_every)
        participants = list(IDS)
        sources = participants * 3  # three rounds
        plan = batched.draw_tournament(sources, participants)
        assert len(plan) == len(sources)
        for game, source in zip(plan, sources):
            setup = sequential.draw(source, participants)
            got_source, got_dest, got_paths = game
            assert got_source == setup.source == source
            assert got_dest == setup.destination
            assert tuple(tuple(p) for p in got_paths) == setup.paths
        # the topology trajectory and the shared generator both match: the
        # batched plan stepped the network at exactly the same draw counts
        assert batched.topology.epoch == sequential.topology.epoch
        assert np.array_equal(
            batched.topology.position_array(),
            sequential.topology.position_array(),
        )
        assert (
            batched.rng.bit_generator.state
            == sequential.rng.bit_generator.state
        )

    def test_round_clock_steps_between_planned_rounds(self):
        oracle = make_oracle(step_every="round")
        calls = []
        original = oracle.topology.step
        oracle.topology.step = lambda: calls.append(1) or original()
        oracle.draw_tournament(list(IDS) * 3, IDS)
        assert len(calls) == 2  # steps happen *between* rounds

    def test_plan_games_uses_batched_path(self):
        from repro.paths.oracle import plan_games

        a = make_oracle(seed=3)
        b = make_oracle(seed=3)
        plan = plan_games(a, IDS, IDS)
        expected = b.draw_tournament(IDS, IDS)
        assert plan == expected


class TestClocking:
    def test_round_mode_steps_once_per_round(self):
        oracle = make_oracle(step_every="round")
        calls = []
        original = oracle.topology.step
        oracle.topology.step = lambda: calls.append(1) or original()
        for _ in range(3):  # three "rounds" of one draw per participant
            for source in IDS:
                oracle.draw(source, IDS)
        assert len(calls) == 2  # steps happen *between* rounds

    def test_integer_mode_steps_every_n_draws(self):
        oracle = make_oracle(step_every=7)
        calls = []
        original = oracle.topology.step
        oracle.topology.step = lambda: calls.append(1) or original()
        for i in range(22):
            oracle.draw(i % N, IDS)
        assert len(calls) == 3  # after draws 7, 14 and 21

    def test_tournament_mode_only_steps_via_hook(self):
        oracle = make_oracle(step_every="tournament")
        calls = []
        original = oracle.topology.step
        oracle.topology.step = lambda: calls.append(1) or original()
        for source in IDS:
            oracle.draw(source, IDS)
        assert not calls
        oracle.on_tournament_end()
        assert len(calls) == 1

    def test_round_mode_hook_is_inert(self):
        oracle = make_oracle(step_every="round")
        epoch = oracle.topology.epoch
        oracle.on_tournament_end()
        assert oracle.topology.epoch == epoch

    def test_evaluation_loop_drives_tournament_clock(self):
        oracle = make_oracle(step_every="tournament")
        calls = []
        original = oracle.topology.step
        oracle.topology.step = lambda: calls.append(1) or original()
        engine = make_engine("fast", N, 0)
        engine.set_strategies([Strategy.all_forward() for _ in range(N)])
        env = environment_with_csn(0, tournament_size=10)
        evaluate_generation(
            engine,
            (env,),
            rounds=2,
            plays_per_environment=1,
            oracle=oracle,
            rng=np.random.default_rng(0),
        )
        assert len(calls) == 2  # N=20 players, 10 seats -> two tournaments


class TestEngineIntegration:
    def test_engines_bit_identical_on_mobile_oracle(self):
        stats = {}
        for engine_name in ("fast", "reference"):
            oracle = make_oracle(seed=9)
            engine = make_engine(engine_name, N, 0)
            rng = np.random.default_rng(13)
            engine.set_strategies([Strategy.random(rng) for _ in range(N)])
            s = TournamentStats()
            engine.run_tournament(IDS, 10, oracle, s, None, None)
            stats[engine_name] = (s.to_dict(), engine.fitness().tolist())
        assert stats["fast"] == stats["reference"]


SMALL_CASE = EvaluationCase(
    name="mobile_small",
    description="small mobile case for fast GA tests",
    environments=(environment_with_csn(3, tournament_size=12),),
    path_mode="shorter",
    mobility="waypoint",
)


def small_config(engine: str) -> ExperimentConfig:
    from repro.config.parameters import GAConfig, SimulationConfig

    return ExperimentConfig(
        case=SMALL_CASE,
        generations=2,
        replications=1,
        engine=engine,
        ga=GAConfig(population_size=24),
        sim=SimulationConfig(
            rounds=4,
            mobility=MobilityConfig(model="waypoint", radio_range=0.45),
        ),
    )


class TestGARuns:
    def test_replication_deterministic_for_identical_seeds(self):
        a = run_replication(small_config("fast"), 0)
        b = run_replication(small_config("fast"), 0)
        assert a.final_population == b.final_population
        assert a.history.to_dict() == b.history.to_dict()
        assert a.final_overall.to_dict() == b.final_overall.to_dict()

    def test_small_ga_run_engines_equivalent(self):
        results = {
            e: run_replication(small_config(e), 0) for e in ("fast", "reference")
        }
        f, r = results["fast"], results["reference"]
        assert f.final_population == r.final_population
        assert f.history.to_dict() == r.history.to_dict()

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_smoke_scale_mobile_case_completes(self, engine):
        """Acceptance: a full smoke-scale GA run with RandomWaypoint mobility
        completes on both engines through MobilePathOracle."""
        config = ExperimentConfig.for_case(
            "mobile_waypoint", scale="smoke", engine=engine
        )
        assert config.sim.mobility.model == "waypoint"
        result = run_replication(config, 0)
        assert len(result.final_population) == config.ga.population_size
        assert 0.0 <= result.final_overall.cooperation_level <= 1.0


class TestFactory:
    def test_build_oracle_wires_config(self):
        config = MobilityConfig(
            model="waypoint", radio_range=0.5, max_paths=2, max_hops=6, step_every=5
        )
        oracle = build_oracle(config, IDS, np.random.default_rng(0))
        assert oracle.max_paths == 2
        assert oracle.max_hops == 6
        assert oracle.step_every == 5
        assert oracle.topology.radio_range == 0.5

    def test_build_oracle_rejects_none_model(self):
        with pytest.raises(ValueError, match="RandomPathOracle"):
            build_oracle(MobilityConfig(), IDS, np.random.default_rng(0))

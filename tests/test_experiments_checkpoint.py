"""Unit tests for checkpoint/resume: store mechanics and bit-identity.

The load-bearing property: a replication resumed from any intact checkpoint
is bit-identical to an uninterrupted run — across engines and oracle
families, because the single-blob pickle preserves the rng/oracle object
sharing.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    CRASH_ENV,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import run_replication

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def smoke_config(**overrides) -> ExperimentConfig:
    return ExperimentConfig.for_case("case1", scale="smoke", **overrides)


def delete_newest_checkpoint(store: CheckpointStore, config, replication) -> int:
    """Simulate a crash that lost the newest checkpoint; returns the
    generation of the surviving one."""
    rep_dir = store.replication_dir(config, replication)
    manifests = sorted(rep_dir.glob("gen*.json"))
    assert len(manifests) >= 2, "need an older checkpoint to fall back to"
    newest = manifests[-1]
    newest.with_suffix(".pkl").unlink()
    newest.unlink()
    return json.loads(manifests[-2].read_text())["generation"]


class TestCheckpointStore:
    def test_save_then_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cfg = smoke_config()
        state = {"population": [1, 2, 3], "note": "x"}
        manifest_path = store.save(cfg, 0, 5, state)
        assert manifest_path.exists()
        loaded = store.load_latest(cfg, 0)
        assert loaded is not None
        assert loaded.generation == 5
        assert loaded.state == state
        assert loaded.manifest["checkpoint_version"] == CHECKPOINT_VERSION

    def test_load_latest_prefers_newest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cfg = smoke_config()
        store.save(cfg, 0, 1, {"generation": 1})
        store.save(cfg, 0, 2, {"generation": 2})
        assert store.load_latest(cfg, 0).generation == 2

    def test_prune_keeps_newest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cfg = smoke_config()
        for generation in range(5):
            store.save(cfg, 0, generation, {"g": generation}, keep=2)
        rep_dir = store.replication_dir(cfg, 0)
        names = sorted(p.name for p in rep_dir.glob("gen*.json"))
        assert names == ["gen000003.json", "gen000004.json"]
        assert sorted(p.name for p in rep_dir.glob("gen*.pkl")) == [
            "gen000003.pkl",
            "gen000004.pkl",
        ]

    def test_missing_dir_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load_latest(smoke_config(), 3) is None

    def test_config_key_separates_experiments(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(smoke_config(seed=1), 0, 4, {"seed": 1})
        # same replication index, different config: must not cross-load
        assert store.load_latest(smoke_config(seed=2), 0) is None

    def test_corrupt_blob_falls_back_to_older(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cfg = smoke_config()
        store.save(cfg, 0, 1, {"g": 1})
        store.save(cfg, 0, 2, {"g": 2})
        blob = store.replication_dir(cfg, 0) / "gen000002.pkl"
        blob.write_bytes(b"\x00" + blob.read_bytes()[1:])
        loaded = store.load_latest(cfg, 0)
        assert loaded.generation == 1
        assert loaded.state == {"g": 1}

    def test_invalid_manifest_is_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cfg = smoke_config()
        store.save(cfg, 0, 1, {"g": 1})
        store.save(cfg, 0, 2, {"g": 2})
        manifest = store.replication_dir(cfg, 0) / "gen000002.json"
        payload = json.loads(manifest.read_text())
        payload["extra_key"] = True  # exact-key schema violation
        manifest.write_text(json.dumps(payload))
        assert store.load_latest(cfg, 0).generation == 1

    def test_manifest_blob_missing_is_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cfg = smoke_config()
        store.save(cfg, 0, 1, {"g": 1})
        store.save(cfg, 0, 2, {"g": 2})
        (store.replication_dir(cfg, 0) / "gen000002.pkl").unlink()
        assert store.load_latest(cfg, 0).generation == 1

    def test_save_rejects_bad_args(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError):
            store.save(smoke_config(), 0, -1, {})
        with pytest.raises(ValueError):
            store.save(smoke_config(), 0, 0, {}, keep=0)


class TestResumeBitIdentity:
    @pytest.mark.parametrize(
        "case, engine",
        [("case1", "fast"), ("case1", "turbo"), ("mobile_waypoint", "batch")],
    )
    def test_resume_matches_uninterrupted(self, tmp_path, case, engine):
        cfg = ExperimentConfig.for_case(
            case, scale="smoke", engine=engine, generations=5
        )
        control = run_replication(cfg, 0)
        interrupted = run_replication(cfg, 0, checkpoint_dir=tmp_path)
        assert interrupted == control  # checkpointing itself changes nothing

        store = CheckpointStore(tmp_path)
        survivor = delete_newest_checkpoint(store, cfg, 0)
        resumed = run_replication(cfg, 0, checkpoint_dir=tmp_path, resume=True)
        assert resumed == control
        assert resumed.checkpoint["resumed_from_generation"] == survivor
        assert survivor < cfg.generations - 1  # genuinely resumed mid-run

    def test_resume_false_starts_fresh(self, tmp_path):
        cfg = smoke_config(generations=4)
        control = run_replication(cfg, 0)
        run_replication(cfg, 0, checkpoint_dir=tmp_path)
        fresh = run_replication(cfg, 0, checkpoint_dir=tmp_path, resume=False)
        assert fresh == control
        assert fresh.checkpoint["resumed_from_generation"] is None
        assert fresh.checkpoint["checkpoints_written"] == cfg.generations

    def test_checkpoint_every_thins_writes(self, tmp_path):
        cfg = smoke_config(generations=5)
        result = run_replication(
            cfg, 0, checkpoint_dir=tmp_path, checkpoint_every=2
        )
        # boundaries after generations 1 and 3, plus the final one (gen 4)
        assert result.checkpoint["checkpoints_written"] == 3

    def test_checkpoint_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            run_replication(
                smoke_config(), 0, checkpoint_dir=tmp_path, checkpoint_every=0
            )

    def test_no_checkpoint_dir_no_provenance(self):
        assert run_replication(smoke_config(), 0).checkpoint is None

    def test_finished_run_reconstitutes_without_simulation(self, tmp_path):
        cfg = smoke_config(generations=3)
        first = run_replication(cfg, 0, checkpoint_dir=tmp_path)
        again = run_replication(cfg, 0, checkpoint_dir=tmp_path)
        assert again == first
        # resumed from the final boundary: nothing was re-simulated
        assert again.checkpoint["resumed_from_generation"] == cfg.generations - 1
        assert again.checkpoint["checkpoints_written"] == 0


class TestCrashInjection:
    def test_sigkill_after_nth_checkpoint(self, tmp_path):
        """The injected crash is a real SIGKILL, so it needs a subprocess."""
        code = (
            "from repro.experiments.config import ExperimentConfig\n"
            "from repro.experiments.replication import run_replication\n"
            "cfg = ExperimentConfig.for_case('case1', scale='smoke',"
            " generations=5)\n"
            f"run_replication(cfg, 0, checkpoint_dir={str(tmp_path)!r})\n"
        )
        env = os.environ.copy()
        env[CRASH_ENV] = "2"
        env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-c", code], env=env)
        assert proc.returncode == -signal.SIGKILL
        cfg = ExperimentConfig.for_case("case1", scale="smoke", generations=5)
        loaded = CheckpointStore(tmp_path).load_latest(cfg, 0)
        assert loaded is not None
        assert loaded.generation == 1  # died right after the 2nd checkpoint

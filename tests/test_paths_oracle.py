"""Unit tests for the path oracles (the engines' single randomness source)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import GameSetup, RandomPathOracle, ScriptedPathOracle


class TestGameSetup:
    def test_valid_setup(self):
        s = GameSetup(source=0, destination=1, paths=((2, 3),))
        assert s.paths == ((2, 3),)

    def test_rejects_empty_paths(self):
        with pytest.raises(ValueError):
            GameSetup(source=0, destination=1, paths=())

    def test_rejects_source_on_path(self):
        with pytest.raises(ValueError):
            GameSetup(source=0, destination=1, paths=((0, 2),))

    def test_rejects_destination_on_path(self):
        with pytest.raises(ValueError):
            GameSetup(source=0, destination=1, paths=((2, 1),))

    def test_rejects_repeated_intermediate(self):
        with pytest.raises(ValueError):
            GameSetup(source=0, destination=1, paths=((2, 2),))


class TestRandomPathOracle:
    def participants(self):
        return list(range(12))

    def test_destination_and_paths_valid(self, rng):
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        for _ in range(100):
            setup = oracle.draw(3, self.participants())
            assert setup.source == 3
            assert setup.destination != 3
            assert setup.destination in self.participants()
            for path in setup.paths:
                assert 3 not in path
                assert setup.destination not in path

    def test_needs_three_participants(self, rng):
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        with pytest.raises(ValueError):
            oracle.draw(0, [0, 1])

    def test_deterministic_under_seed(self):
        a = RandomPathOracle(np.random.default_rng(3), SHORTER_PATHS)
        b = RandomPathOracle(np.random.default_rng(3), SHORTER_PATHS)
        setups_a = [a.draw(0, self.participants()) for _ in range(20)]
        setups_b = [b.draw(0, self.participants()) for _ in range(20)]
        assert setups_a == setups_b

    def test_destination_roughly_uniform(self, rng):
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        counts = np.zeros(12)
        for _ in range(4000):
            counts[oracle.draw(0, self.participants()).destination] += 1
        assert counts[0] == 0
        freq = counts[1:] / 4000
        assert np.allclose(freq, 1 / 11, atol=0.02)


class TestScriptedPathOracle:
    def test_replays_in_order(self):
        setups = [
            GameSetup(source=0, destination=1, paths=((2,),)),
            GameSetup(source=1, destination=0, paths=((3,),)),
        ]
        oracle = ScriptedPathOracle(setups)
        assert oracle.remaining == 2
        assert oracle.draw(0, [0, 1, 2, 3]) is setups[0]
        assert oracle.draw(1, [0, 1, 2, 3]) is setups[1]
        assert oracle.remaining == 0

    def test_exhaustion_raises(self):
        oracle = ScriptedPathOracle([])
        with pytest.raises(IndexError):
            oracle.draw(0, [0, 1, 2])

    def test_source_mismatch_detected(self):
        oracle = ScriptedPathOracle(
            [GameSetup(source=0, destination=1, paths=((2,),))]
        )
        with pytest.raises(AssertionError, match="source 0"):
            oracle.draw(5, [0, 1, 2, 5])

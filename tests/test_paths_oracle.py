"""Unit tests for the path oracles (the engines' single randomness source)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.paths.distributions import LONGER_PATHS, SHORTER_PATHS
from repro.paths.oracle import (
    GameSetup,
    RandomPathOracle,
    ScriptedPathOracle,
    plan_games,
)


class TestGameSetup:
    def test_valid_setup(self):
        s = GameSetup(source=0, destination=1, paths=((2, 3),))
        assert s.paths == ((2, 3),)

    def test_rejects_empty_paths(self):
        with pytest.raises(ValueError):
            GameSetup(source=0, destination=1, paths=())

    def test_rejects_source_on_path(self):
        with pytest.raises(ValueError):
            GameSetup(source=0, destination=1, paths=((0, 2),))

    def test_rejects_destination_on_path(self):
        with pytest.raises(ValueError):
            GameSetup(source=0, destination=1, paths=((2, 1),))

    def test_rejects_repeated_intermediate(self):
        with pytest.raises(ValueError):
            GameSetup(source=0, destination=1, paths=((2, 2),))

    def test_rejects_self_addressed_game(self):
        """Regression: a buggy oracle emitting source == destination used to
        pass validation and silently corrupt fitness accounting."""
        with pytest.raises(ValueError, match="two distinct endpoints"):
            GameSetup(source=3, destination=3, paths=((2,),))


class TestRandomPathOracle:
    def participants(self):
        return list(range(12))

    def test_destination_and_paths_valid(self, rng):
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        for _ in range(100):
            setup = oracle.draw(3, self.participants())
            assert setup.source == 3
            assert setup.destination != 3
            assert setup.destination in self.participants()
            for path in setup.paths:
                assert 3 not in path
                assert setup.destination not in path

    def test_needs_three_participants(self, rng):
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        with pytest.raises(ValueError):
            oracle.draw(0, [0, 1])

    def test_deterministic_under_seed(self):
        a = RandomPathOracle(np.random.default_rng(3), SHORTER_PATHS)
        b = RandomPathOracle(np.random.default_rng(3), SHORTER_PATHS)
        setups_a = [a.draw(0, self.participants()) for _ in range(20)]
        setups_b = [b.draw(0, self.participants()) for _ in range(20)]
        assert setups_a == setups_b

    def test_destination_roughly_uniform(self, rng):
        oracle = RandomPathOracle(rng, SHORTER_PATHS)
        counts = np.zeros(12)
        for _ in range(4000):
            counts[oracle.draw(0, self.participants()).destination] += 1
        assert counts[0] == 0
        freq = counts[1:] / 4000
        assert np.allclose(freq, 1 / 11, atol=0.02)


class TestScriptedPathOracle:
    def test_replays_in_order(self):
        setups = [
            GameSetup(source=0, destination=1, paths=((2,),)),
            GameSetup(source=1, destination=0, paths=((3,),)),
        ]
        oracle = ScriptedPathOracle(setups)
        assert oracle.remaining == 2
        assert oracle.draw(0, [0, 1, 2, 3]) is setups[0]
        assert oracle.draw(1, [0, 1, 2, 3]) is setups[1]
        assert oracle.remaining == 0

    def test_exhaustion_raises(self):
        oracle = ScriptedPathOracle([])
        with pytest.raises(IndexError):
            oracle.draw(0, [0, 1, 2])

    def test_source_mismatch_detected(self):
        oracle = ScriptedPathOracle(
            [GameSetup(source=0, destination=1, paths=((2,),))]
        )
        with pytest.raises(AssertionError, match="source 0"):
            oracle.draw(5, [0, 1, 2, 5])


class TestDrawTournament:
    """The batched draw path must be stream-identical to per-game draws."""

    @pytest.mark.parametrize("hop_dist", [SHORTER_PATHS, LONGER_PATHS])
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_stream_identical_to_sequential_draws(self, hop_dist, seed):
        participants = list(range(20))
        sources = participants * 3  # three rounds
        batched = RandomPathOracle(np.random.default_rng(seed), hop_dist)
        sequential = RandomPathOracle(np.random.default_rng(seed), hop_dist)
        plan = batched.draw_tournament(sources, participants)
        assert len(plan) == len(sources)
        for game, source in zip(plan, sources):
            setup = sequential.draw(source, participants)
            got_source, got_dest, got_paths = game
            assert got_source == setup.source == source
            assert got_dest == setup.destination
            assert tuple(tuple(p) for p in got_paths) == setup.paths
        # including the generator state: interleaving the two modes across
        # engines can never skew a shared stream
        assert (
            batched.rng.bit_generator.state == sequential.rng.bit_generator.state
        )

    def test_small_tournament_clamps_like_draw(self):
        """Hop draws above the pool size clamp identically in both modes."""
        participants = [0, 1, 2, 3]
        a = RandomPathOracle(np.random.default_rng(3), LONGER_PATHS)
        b = RandomPathOracle(np.random.default_rng(3), LONGER_PATHS)
        plan = a.draw_tournament(participants * 5, participants)
        for game, source in zip(plan, participants * 5):
            setup = b.draw(source, participants)
            assert tuple(tuple(p) for p in game[2]) == setup.paths

    def test_needs_three_participants(self):
        oracle = RandomPathOracle(np.random.default_rng(0), SHORTER_PATHS)
        with pytest.raises(ValueError, match="at least 3 participants"):
            oracle.draw_tournament([0, 1], [0, 1])

    def test_source_outside_participants_matches_draw(self):
        """A non-participant source leaves every participant drawable, just
        like draw(): the pool is sized per source, not per participant
        count."""
        participants = list(range(6))
        a = RandomPathOracle(np.random.default_rng(11), SHORTER_PATHS)
        b = RandomPathOracle(np.random.default_rng(11), SHORTER_PATHS)
        plan = a.draw_tournament([99] * 40, participants)
        destinations = set()
        for game in plan:
            setup = b.draw(99, participants)
            assert game[1] == setup.destination
            assert tuple(tuple(p) for p in game[2]) == setup.paths
            destinations.add(game[1])
        # every participant is reachable as a destination
        assert destinations == set(participants)
        assert a.rng.bit_generator.state == b.rng.bit_generator.state


class TestPlanGames:
    def test_uses_batched_path_for_random_oracle(self):
        participants = list(range(8))
        a = RandomPathOracle(np.random.default_rng(5), SHORTER_PATHS)
        b = RandomPathOracle(np.random.default_rng(5), SHORTER_PATHS)
        plan = plan_games(a, participants, participants)
        expected = b.draw_tournament(participants, participants)
        assert plan == expected

    def test_falls_back_to_per_game_draws(self):
        setups = [
            GameSetup(source=0, destination=1, paths=((2,), (3,))),
            GameSetup(source=1, destination=2, paths=((0,),)),
        ]
        oracle = ScriptedPathOracle(setups)
        plan = plan_games(oracle, [0, 1], [0, 1, 2, 3])
        assert plan == [(0, 1, ((2,), (3,))), (1, 2, ((0,),))]
        assert oracle.remaining == 0
